#include "server/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace lmds::server {

std::string_view to_string(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return "bool";
    case JsonValue::Type::Int: return "int";
    case JsonValue::Type::Double: return "double";
    case JsonValue::Type::String: return "string";
    case JsonValue::Type::Array: return "array";
    case JsonValue::Type::Object: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_error(JsonValue::Type got, std::string_view want) {
  throw JsonError("expected " + std::string(want) + ", got " +
                  std::string(to_string(got)));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type() != Type::Bool) type_error(type(), "bool");
  return std::get<bool>(v_);
}

std::int64_t JsonValue::as_int() const {
  if (type() != Type::Int) type_error(type(), "int");
  return std::get<std::int64_t>(v_);
}

double JsonValue::as_double() const {
  if (type() == Type::Int) return static_cast<double>(std::get<std::int64_t>(v_));
  if (type() != Type::Double) type_error(type(), "number");
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  if (type() != Type::String) type_error(type(), "string");
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type() != Type::Array) type_error(type(), "array");
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type() != Type::Object) type_error(type(), "object");
  return std::get<Object>(v_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type() != Type::Object) return nullptr;
  const Object& obj = std::get<Object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what + " at byte " + std::to_string(pos_));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value(depth + 1);  // duplicate key: last wins
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view lit = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), value);
      if (ec == std::errc() && ptr == lit.data() + lit.size()) return JsonValue(value);
      // Out-of-int64-range integer literals fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), value);
    if (ec != std::errc() || ptr != lit.data() + lit.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("invalid number");
    }
    return JsonValue(value);
  }
};

}  // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).parse_document(); }

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) {
    out += "null";
    return;
  }
  out.append(buf, ptr);
}

namespace {

void dump_value(std::string& out, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::Null: out += "null"; break;
    case JsonValue::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Type::Int: out += std::to_string(v.as_int()); break;
    case JsonValue::Type::Double: json_append_double(out, v.as_double()); break;
    case JsonValue::Type::String: json_append_string(out, v.as_string()); break;
    case JsonValue::Type::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(out, item);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        json_append_string(out, key);
        out += ':';
        dump_value(out, value);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string json_dump(const JsonValue& v) {
  std::string out;
  dump_value(out, v);
  return out;
}

}  // namespace lmds::server
