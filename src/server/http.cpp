#include "server/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "server/json.hpp"

namespace lmds::server {

namespace {

// HTTP header names are case-insensitive; values keep their case.
bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::string_view reason_of(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Status";
}

std::string make_response(int status, std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += reason_of(status);
  out += "\r\nContent-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

/// Maps a protocol response body onto an HTTP status. Success bodies all
/// start with {"ok":true — O(1); error bodies are short, so parsing them to
/// read the code is cheap.
int status_of(std::string_view body) {
  if (body.starts_with("{\"ok\":true")) return 200;
  try {
    const JsonValue parsed = json_parse(body);
    const JsonValue* code = parsed.find("code");
    if (code && code->type() == JsonValue::Type::String) {
      const std::string& c = code->as_string();
      if (c == "bad_request") return 400;
      if (c == "unknown_solver" || c == "unknown_handle") return 404;
      if (c == "server_busy") return 503;
    }
  } catch (const JsonError&) {
    // fall through — an unparseable body is a server-side bug class
  }
  return 500;
}

}  // namespace

std::optional<HttpRequest> read_http_request(LineReader& reader, int fd,
                                             const ServerLimits& limits) {
  // Request line. A line-length limit bounds header memory the same way the
  // line protocol bounds its request lines.
  std::optional<std::string> start = reader.next_line(limits.max_line_bytes);
  if (!start) {
    if (reader.oversized()) throw HttpError(400, "request line too long");
    return std::nullopt;  // clean EOF between requests
  }
  HttpRequest req;
  {
    const std::string& line = *start;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                     : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || !line.substr(sp2 + 1).starts_with("HTTP/1.")) {
      throw HttpError(400, "malformed request line: " + line);
    }
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = req.target.find('?');
    if (query != std::string::npos) req.target.resize(query);
    // HTTP/1.0 defaults to close; 1.1 to keep-alive.
    req.keep_alive = !line.substr(sp2 + 1).starts_with("HTTP/1.0");
  }

  std::size_t content_length = 0;
  bool expects_continue = false;
  for (int count = 0;; ++count) {
    if (count > 100) throw HttpError(400, "too many headers");
    std::optional<std::string> line = reader.next_line(limits.max_line_bytes);
    if (!line) {
      if (reader.oversized()) throw HttpError(400, "header line too long");
      throw HttpError(400, "connection closed inside headers");
    }
    if (line->empty()) break;  // end of headers
    const std::size_t colon = line->find(':');
    if (colon == std::string::npos) throw HttpError(400, "malformed header: " + *line);
    const std::string_view name = trim(std::string_view(*line).substr(0, colon));
    const std::string_view value = trim(std::string_view(*line).substr(colon + 1));
    if (iequals(name, "content-length")) {
      std::size_t parsed = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        throw HttpError(400, "bad Content-Length");
      }
      if (parsed > limits.max_line_bytes) {
        throw HttpError(413, "request body exceeds " + std::to_string(limits.max_line_bytes) +
                                 " bytes");
      }
      content_length = parsed;
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close")) req.keep_alive = false;
      if (iequals(value, "keep-alive")) req.keep_alive = true;
    } else if (iequals(name, "transfer-encoding")) {
      // Chunked bodies would need a second framing layer; clients of this
      // API always know their body size.
      throw HttpError(400, "Transfer-Encoding is not supported; send Content-Length");
    } else if (iequals(name, "expect")) {
      if (iequals(value, "100-continue")) expects_continue = true;
    } else if (iequals(name, "x-lmds-namespace")) {
      req.ns = std::string(value);
    }
  }

  if (content_length > 0) {
    // curl sends Expect: 100-continue for bodies over ~1KB and stalls ~1s
    // waiting for this interim line before transmitting the body.
    if (expects_continue) (void)send_all(fd, "HTTP/1.1 100 Continue\r\n\r\n");
    std::optional<std::string> body = reader.read_exact(content_length);
    if (!body) throw HttpError(400, "connection closed inside request body");
    req.body = *std::move(body);
  }
  return req;
}

std::string handle_http_request(const HttpRequest& req, Session& session) {
  const ServerLimits& limits = session.core().options().limits;
  // The header namespace is this request's open_session equivalent; a
  // "namespace" field inside a solve body still wins (decode_solve).
  try {
    JsonValue ns_value{req.ns};
    session.set_ns(decode_namespace(ns_value, limits));
  } catch (const ProtocolError& e) {
    return make_response(400, encode_error(e.code(), e.what()), req.keep_alive);
  }

  const auto parse_body = [&](bool required) -> JsonValue {
    if (req.body.empty()) {
      if (required) {
        throw ProtocolError(ErrorCode::BadRequest, "this route requires a JSON body");
      }
      return JsonValue(JsonValue::Object{});
    }
    try {
      return json_parse(req.body);
    } catch (const JsonError& e) {
      throw ProtocolError(ErrorCode::BadRequest, std::string("invalid JSON body: ") + e.what());
    }
  };

  std::string body;
  int created_status = 200;
  try {
    if (req.target == "/v2/solve" && req.method == "POST") {
      body = session.dispatch("solve", parse_body(true));
    } else if (req.target == "/v2/graphs" && req.method == "PUT") {
      // The body IS the graph; wrap it the way the line protocol nests it.
      JsonValue::Object root;
      root.emplace("graph", parse_body(true));
      body = session.dispatch("put_graph", JsonValue(std::move(root)));
      // A fresh upload is a created resource; read the response's "new"
      // member structurally (the body is small) rather than string-sniffing.
      try {
        // The parsed value must outlive the pointer find() hands back into
        // it — a temporary here is a use-after-free (caught by ASan).
        const JsonValue parsed = json_parse(body);
        const JsonValue* inserted = parsed.find("new");
        if (inserted && inserted->type() == JsonValue::Type::Bool && inserted->as_bool()) {
          created_status = 201;
        }
      } catch (const JsonError&) {
        // an unparseable success body is a server-side bug class; stay 200
      }
    } else if (req.target.starts_with("/v2/graphs/") && req.target.ends_with("/patch") &&
               req.method == "POST") {
      // POST /v2/graphs/<handle>/patch — the handle rides in the route (like
      // DELETE), the body is the {"add":..,"del":..,"n":..} edit batch.
      constexpr std::size_t kPrefix = sizeof("/v2/graphs/") - 1;
      constexpr std::size_t kSuffix = sizeof("/patch") - 1;
      std::string handle = req.target.substr(kPrefix, req.target.size() - kPrefix - kSuffix);
      JsonValue body_value = parse_body(true);
      if (body_value.type() != JsonValue::Type::Object) {
        throw ProtocolError(ErrorCode::BadRequest, "patch body must be a JSON object");
      }
      JsonValue::Object root = body_value.as_object();
      root.insert_or_assign("handle", JsonValue(std::move(handle)));
      body = session.dispatch("patch_graph", JsonValue(std::move(root)));
      // A newly derived graph is a created resource, same as a fresh upload.
      try {
        const JsonValue parsed = json_parse(body);
        const JsonValue* inserted = parsed.find("new");
        if (inserted && inserted->type() == JsonValue::Type::Bool && inserted->as_bool()) {
          created_status = 201;
        }
      } catch (const JsonError&) {
        // an unparseable success body is a server-side bug class; stay 200
      }
    } else if (req.target.starts_with("/v2/graphs/") && req.method == "DELETE") {
      JsonValue::Object root;
      root.emplace("handle", JsonValue(req.target.substr(sizeof("/v2/graphs/") - 1)));
      body = session.dispatch("drop_graph", JsonValue(std::move(root)));
    } else if (req.target == "/v2/solvers" && req.method == "GET") {
      body = session.dispatch("solvers", JsonValue(JsonValue::Object{}));
    } else if (req.target == "/v2/stats" && req.method == "GET") {
      body = session.dispatch("stats", JsonValue(JsonValue::Object{}));
    } else if (req.target == "/v2/shutdown" && req.method == "POST") {
      body = session.dispatch("shutdown", JsonValue(JsonValue::Object{}));
    } else if (req.target == "/v2/replicate" && req.method == "POST") {
      // Install a peer's payload (the HTTP face of replicate_in).
      body = session.dispatch("replicate_in", parse_body(true));
    } else if (req.target == "/v2/replicate" && req.method == "GET") {
      // Export this server's payload (pull-mode replicate_out).
      body = session.dispatch("replicate_out", JsonValue(JsonValue::Object{}));
    } else if (req.target == "/v2/replicate/push" && req.method == "POST") {
      // Push this server's payload to the peer named in the body.
      body = session.dispatch("replicate_out", parse_body(true));
    } else {
      return make_response(
          404,
          encode_error(ErrorCode::BadRequest,
                       "no route " + req.method + " " + req.target +
                           " (try /v2/solve, /v2/graphs, /v2/solvers, /v2/stats)"),
          req.keep_alive);
    }
  } catch (const ProtocolError& e) {
    return make_response(e.code() == ErrorCode::BadRequest ? 400 : 500,
                         encode_error(e.code(), e.what()), req.keep_alive);
  }

  int status = status_of(body);
  if (status == 200) status = created_status;
  return make_response(status, body, req.keep_alive);
}

std::string http_error_response(int status, ErrorCode code, std::string_view message) {
  return make_response(status, encode_error(code, message), /*keep_alive=*/false);
}

}  // namespace lmds::server
