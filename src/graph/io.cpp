#include "graph/io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace lmds::graph {

Graph read_edge_list(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank line
    if (first == "n") {
      int n = 0;
      if (!(ls >> n) || n < 0) throw std::runtime_error("read_edge_list: bad vertex count");
      builder.ensure_vertices(n);
      continue;
    }
    Vertex u = 0;
    Vertex v = 0;
    try {
      u = static_cast<Vertex>(std::stol(first));
    } catch (const std::exception&) {
      throw std::runtime_error("read_edge_list: bad vertex token '" + first + "'");
    }
    if (!(ls >> v)) throw std::runtime_error("read_edge_list: missing second endpoint");
    builder.add_edge(u, v);
  }
  return builder.build();
}

Graph parse_edge_list(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "n " << g.num_vertices() << "\n";
  for (const Edge e : g.edges()) out << e.u << " " << e.v << "\n";
}

void write_dot(std::ostream& out, const Graph& g, std::span<const Vertex> highlight) {
  std::vector<char> marked(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : highlight) {
    if (g.has_vertex(v)) marked[static_cast<std::size_t>(v)] = 1;
  }
  out << "graph G {\n  node [shape=circle];\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    out << "  " << v;
    if (marked[static_cast<std::size_t>(v)]) {
      out << " [style=filled, fillcolor=lightblue]";
    }
    out << ";\n";
  }
  for (const Edge e : g.edges()) out << "  " << e.u << " -- " << e.v << ";\n";
  out << "}\n";
}

std::string to_dot(const Graph& g, std::span<const Vertex> highlight) {
  std::ostringstream out;
  write_dot(out, g, highlight);
  return out.str();
}

}  // namespace lmds::graph
