#pragma once
// Core immutable graph type used throughout the library.
//
// Graphs are simple (no self-loops, no parallel edges), undirected, and
// stored in CSR form with sorted adjacency lists so that edge queries are
// O(log deg) and neighbourhood iteration is cache-friendly. Vertices are
// dense integers 0..n-1; algorithms that work on subgraphs carry an explicit
// mapping back to the parent graph instead of storing labels inside Graph.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace lmds::graph {

/// Vertex index. Signed on purpose (C++ Core Guidelines ES.102); -1 is used
/// as a sentinel for "no vertex" in traversal outputs.
using Vertex = std::int32_t;

inline constexpr Vertex kNoVertex = -1;

class Graph;
struct GraphPatch;
struct PatchedGraph;
PatchedGraph apply_patch(const Graph& parent, const GraphPatch& patch);

namespace detail {
struct TrustedCsr;
}  // namespace detail

/// An undirected edge, stored with endpoints() in ascending order.
struct Edge {
  Vertex u = kNoVertex;
  Vertex v = kNoVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable simple undirected graph in CSR form.
///
/// Construct via GraphBuilder (see builder.hpp) or one of the generators.
class Graph {
 public:
  /// Empty graph with no vertices.
  Graph() = default;

  /// Builds from an adjacency list. Each inner vector is sorted and
  /// deduplicated; self-loops are rejected. Symmetry is enforced: if u lists
  /// v then v must list u (throws std::invalid_argument otherwise).
  explicit Graph(const std::vector<std::vector<Vertex>>& adjacency);

  /// Number of vertices.
  int num_vertices() const { return static_cast<int>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  /// Number of undirected edges.
  int num_edges() const { return static_cast<int>(neighbors_.size() / 2); }

  /// True iff v is a valid vertex index of this graph.
  bool has_vertex(Vertex v) const { return v >= 0 && v < num_vertices(); }

  /// Sorted open neighbourhood N(v).
  std::span<const Vertex> neighbors(Vertex v) const {
    return {neighbors_.data() + offsets_[static_cast<std::size_t>(v)],
            neighbors_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  /// Degree of v.
  int degree(Vertex v) const {
    return static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

  /// Start of v's adjacency in the flat CSR array. Slot j of vertex v (its
  /// j-th neighbour) has the stable flat index adjacency_offset(v) + j —
  /// the indexing scheme hot paths use for parallel per-slot attribute
  /// arrays (e.g. the undirected edge id of every directed CSR slot).
  std::size_t adjacency_offset(Vertex v) const { return offsets_[static_cast<std::size_t>(v)]; }

  /// Edge query in O(log deg(u)).
  bool has_edge(Vertex u, Vertex v) const;

  /// All edges with u < v, in lexicographic order.
  std::vector<Edge> edges() const;

  /// Sorted closed neighbourhood N[v] = N(v) ∪ {v}.
  std::vector<Vertex> closed_neighborhood(Vertex v) const;

  /// True iff N[a] ⊆ N[b] (closed-neighbourhood containment; the test used by
  /// the D2 rule of Theorem 4.4 and the "interesting vertex" definition).
  bool closed_neighborhood_contained(Vertex a, Vertex b) const;

  /// True iff N[a] == N[b], i.e. a and b are true twins (or a == b).
  bool true_twins(Vertex a, Vertex b) const;

  /// Human-readable one-line summary, e.g. "Graph(n=10, m=14)".
  std::string summary() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  /// Trusted CSR constructor: offsets/neighbors must already satisfy every
  /// class invariant (sorted, symmetric, loop-free). Reachable only through
  /// apply_patch (ops.cpp), which splices unchanged adjacency spans from a
  /// parent graph, and detail::TrustedCsr, the hot paths' assembly seam.
  Graph(std::vector<std::size_t> offsets, std::vector<Vertex> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  friend PatchedGraph apply_patch(const Graph& parent, const GraphPatch& patch);
  friend struct detail::TrustedCsr;

  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Vertex> neighbors_;     // size 2m, sorted per vertex
};

namespace detail {

/// Internal escape hatch into the trusted CSR constructor for hot paths that
/// assemble offsets/neighbors arrays guaranteed to satisfy the Graph
/// invariants by construction (the CSR-native induced-subgraph and ball-view
/// extraction: relabelling is monotone, so copied rows stay sorted, and
/// edges are taken from an already-valid graph). Anything that cannot prove
/// the invariants must go through a validating constructor instead.
struct TrustedCsr {
  static Graph build(std::vector<std::size_t> offsets, std::vector<Vertex> neighbors) {
    return Graph(std::move(offsets), std::move(neighbors));
  }
};

}  // namespace detail

}  // namespace lmds::graph
