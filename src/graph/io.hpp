#pragma once
// Plain-text graph I/O: edge-list (one "u v" pair per line, '#' comments) and
// Graphviz DOT export for debugging and the example programs.

#include <iosfwd>
#include <span>
#include <string>

#include "graph/graph.hpp"

namespace lmds::graph {

/// Reads an edge-list graph. Format: optional first line "n <count>";
/// remaining non-comment lines are "u v" pairs. Vertices are created on
/// demand. Throws std::runtime_error on malformed input.
Graph read_edge_list(std::istream& in);

/// Parses a graph from an edge-list string (same format as read_edge_list).
Graph parse_edge_list(const std::string& text);

/// Writes "n <count>" followed by one "u v" line per edge.
void write_edge_list(std::ostream& out, const Graph& g);

/// Graphviz DOT output. Vertices in `highlight` are drawn filled — used by
/// the examples to visualise computed dominating sets.
void write_dot(std::ostream& out, const Graph& g, std::span<const Vertex> highlight = {});

/// DOT output as a string (convenience for examples).
std::string to_dot(const Graph& g, std::span<const Vertex> highlight = {});

}  // namespace lmds::graph
