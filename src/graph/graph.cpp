#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace lmds::graph {

Graph::Graph(const std::vector<std::vector<Vertex>>& adjacency) {
  const auto n = adjacency.size();
  offsets_.assign(n + 1, 0);

  std::vector<std::vector<Vertex>> sorted(n);
  for (std::size_t v = 0; v < n; ++v) {
    sorted[v] = adjacency[v];
    std::sort(sorted[v].begin(), sorted[v].end());
    sorted[v].erase(std::unique(sorted[v].begin(), sorted[v].end()), sorted[v].end());
    for (Vertex w : sorted[v]) {
      if (w < 0 || static_cast<std::size_t>(w) >= n) {
        throw std::invalid_argument("Graph: neighbor index out of range");
      }
      if (static_cast<std::size_t>(w) == v) {
        throw std::invalid_argument("Graph: self-loop not allowed");
      }
    }
    offsets_[v + 1] = offsets_[v] + sorted[v].size();
  }

  neighbors_.reserve(offsets_[n]);
  for (std::size_t v = 0; v < n; ++v) {
    neighbors_.insert(neighbors_.end(), sorted[v].begin(), sorted[v].end());
  }

  // Enforce symmetry.
  for (std::size_t v = 0; v < n; ++v) {
    for (Vertex w : neighbors(static_cast<Vertex>(v))) {
      if (!has_edge(w, static_cast<Vertex>(v))) {
        throw std::invalid_argument("Graph: adjacency list is not symmetric");
      }
    }
  }
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (!has_vertex(u) || !has_vertex(v) || u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(static_cast<std::size_t>(num_edges()));
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) result.push_back(Edge{u, v});
    }
  }
  return result;
}

std::vector<Vertex> Graph::closed_neighborhood(Vertex v) const {
  const auto nb = neighbors(v);
  std::vector<Vertex> result;
  result.reserve(nb.size() + 1);
  // Insert v in sorted position.
  auto it = std::lower_bound(nb.begin(), nb.end(), v);
  result.insert(result.end(), nb.begin(), it);
  result.push_back(v);
  result.insert(result.end(), it, nb.end());
  return result;
}

bool Graph::closed_neighborhood_contained(Vertex a, Vertex b) const {
  if (a == b) return true;
  // N[a] ⊆ N[b] requires a ∈ N[b], i.e. a and b adjacent.
  if (!has_edge(a, b)) return false;
  for (Vertex w : neighbors(a)) {
    if (w == b) continue;
    if (!has_edge(w, b)) return false;
  }
  return true;
}

bool Graph::true_twins(Vertex a, Vertex b) const {
  return closed_neighborhood_contained(a, b) && closed_neighborhood_contained(b, a);
}

std::string Graph::summary() const {
  return "Graph(n=" + std::to_string(num_vertices()) + ", m=" + std::to_string(num_edges()) + ")";
}

}  // namespace lmds::graph
