#include "graph/bfs.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace lmds::graph {

namespace {

// Shared BFS kernel: distances from all sources, optional radius cap
// (radius < 0 means unbounded), optional vertex mask (mask[v] == false means
// v is treated as deleted; mask may be empty meaning "all alive").
std::vector<int> bfs_kernel(const Graph& g, std::span<const Vertex> sources, int radius,
                            std::span<const char> mask) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<Vertex> queue;
  for (Vertex s : sources) {
    if (!g.has_vertex(s)) throw std::invalid_argument("bfs: source out of range");
    if (!mask.empty() && !mask[static_cast<std::size_t>(s)]) continue;
    if (dist[static_cast<std::size_t>(s)] == -1) {
      dist[static_cast<std::size_t>(s)] = 0;
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop();
    const int du = dist[static_cast<std::size_t>(u)];
    if (radius >= 0 && du >= radius) continue;
    for (Vertex w : g.neighbors(u)) {
      if (!mask.empty() && !mask[static_cast<std::size_t>(w)]) continue;
      if (dist[static_cast<std::size_t>(w)] == -1) {
        dist[static_cast<std::size_t>(w)] = du + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<int> bfs_distances(const Graph& g, Vertex src) {
  const Vertex sources[] = {src};
  return bfs_kernel(g, sources, -1, {});
}

std::vector<int> bfs_distances_multi(const Graph& g, std::span<const Vertex> sources) {
  return bfs_kernel(g, sources, -1, {});
}

std::vector<Vertex> ball(const Graph& g, Vertex v, int r) {
  const Vertex sources[] = {v};
  return ball_of_set(g, sources, r);
}

std::vector<Vertex> ball_of_set(const Graph& g, std::span<const Vertex> sources, int r) {
  const auto dist = bfs_kernel(g, sources, r, {});
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[static_cast<std::size_t>(v)] >= 0) result.push_back(v);
  }
  return result;
}

std::vector<std::vector<Vertex>> Components::groups() const {
  std::vector<std::vector<Vertex>> result(static_cast<std::size_t>(count));
  for (Vertex v = 0; v < static_cast<Vertex>(component.size()); ++v) {
    const int c = component[static_cast<std::size_t>(v)];
    if (c >= 0) result[static_cast<std::size_t>(c)].push_back(v);
  }
  return result;
}

Components connected_components(const Graph& g) { return components_without(g, {}); }

Components components_without(const Graph& g, std::span<const Vertex> removed) {
  std::vector<char> alive(static_cast<std::size_t>(g.num_vertices()), 1);
  for (Vertex v : removed) {
    if (!g.has_vertex(v)) throw std::invalid_argument("components_without: vertex out of range");
    alive[static_cast<std::size_t>(v)] = 0;
  }
  Components result;
  result.component.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (!alive[static_cast<std::size_t>(s)] || result.component[static_cast<std::size_t>(s)] != -1)
      continue;
    const int id = result.count++;
    std::queue<Vertex> queue;
    queue.push(s);
    result.component[static_cast<std::size_t>(s)] = id;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop();
      for (Vertex w : g.neighbors(u)) {
        if (!alive[static_cast<std::size_t>(w)]) continue;
        if (result.component[static_cast<std::size_t>(w)] == -1) {
          result.component[static_cast<std::size_t>(w)] = id;
          queue.push(w);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

int eccentricity(const Graph& g, Vertex v) {
  const auto dist = bfs_distances(g, v);
  int ecc = 0;
  for (int d : dist) {
    if (d == -1) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  int diam = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const int ecc = eccentricity(g, v);
    if (ecc == -1) return -1;
    diam = std::max(diam, ecc);
  }
  return diam;
}

int weak_diameter(const Graph& g, std::span<const Vertex> s) {
  int result = 0;
  for (Vertex v : s) {
    const auto dist = bfs_distances(g, v);
    for (Vertex u : s) {
      const int d = dist[static_cast<std::size_t>(u)];
      if (d == -1) return -1;
      result = std::max(result, d);
    }
  }
  return result;
}

int distance(const Graph& g, Vertex u, Vertex v) {
  const auto dist = bfs_distances(g, u);
  return dist[static_cast<std::size_t>(v)];
}

}  // namespace lmds::graph
