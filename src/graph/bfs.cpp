#include "graph/bfs.hpp"

#include <algorithm>
#include <stdexcept>

namespace lmds::graph {

namespace {

// Shared BFS kernel: distances from all sources, optional radius cap
// (radius < 0 means unbounded), optional vertex mask (mask[v] == false means
// v is treated as deleted; mask may be empty meaning "all alive").
// Level-synchronous frontier vectors instead of a std::queue: no per-push
// heap traffic, and each level is a contiguous scan. Distances are identical
// to the queue version — BFS levels do not depend on intra-level order.
std::vector<int> bfs_kernel(const Graph& g, std::span<const Vertex> sources, int radius,
                            std::span<const char> mask) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<Vertex> current;
  std::vector<Vertex> next;
  for (Vertex s : sources) {
    if (!g.has_vertex(s)) throw std::invalid_argument("bfs: source out of range");
    if (!mask.empty() && !mask[static_cast<std::size_t>(s)]) continue;
    if (dist[static_cast<std::size_t>(s)] == -1) {
      dist[static_cast<std::size_t>(s)] = 0;
      current.push_back(s);
    }
  }
  for (int d = 0; !current.empty() && (radius < 0 || d < radius); ++d) {
    next.clear();
    for (Vertex u : current) {
      for (Vertex w : g.neighbors(u)) {
        if (!mask.empty() && !mask[static_cast<std::size_t>(w)]) continue;
        if (dist[static_cast<std::size_t>(w)] == -1) {
          dist[static_cast<std::size_t>(w)] = d + 1;
          next.push_back(w);
        }
      }
    }
    std::swap(current, next);
  }
  return dist;
}

// Radius-capped multi-source traversal into the caller's scratch; the shared
// engine of ball_into / ball_of_set_into. Sources must be valid vertices.
void ball_kernel_into(const Graph& g, std::span<const Vertex> sources, int r,
                      BfsScratch& scratch, std::vector<Vertex>& out) {
  scratch.begin(g.num_vertices());
  std::vector<Vertex>& current = scratch.current();
  std::vector<Vertex>& next = scratch.next();
  for (Vertex s : sources) {
    if (!g.has_vertex(s)) throw std::invalid_argument("bfs: source out of range");
    if (!scratch.seen(s)) {
      scratch.mark(s, 0);
      current.push_back(s);
    }
  }
  // r < 0 means unbounded, matching the distance kernel's convention.
  for (int d = 0; !current.empty() && (r < 0 || d < r); ++d) {
    next.clear();
    for (Vertex u : current) {
      for (Vertex w : g.neighbors(u)) {
        if (!scratch.seen(w)) {
          scratch.mark(w, d + 1);
          next.push_back(w);
        }
      }
    }
    std::swap(current, next);
  }
  out.assign(scratch.visited().begin(), scratch.visited().end());
  std::sort(out.begin(), out.end());
}

}  // namespace

void ball_into(const Graph& g, Vertex v, int r, BfsScratch& scratch, std::vector<Vertex>& out) {
  const Vertex sources[] = {v};
  ball_kernel_into(g, sources, r, scratch, out);
}

void ball_of_set_into(const Graph& g, std::span<const Vertex> sources, int r,
                      BfsScratch& scratch, std::vector<Vertex>& out) {
  ball_kernel_into(g, sources, r, scratch, out);
}

std::vector<int> bfs_distances(const Graph& g, Vertex src) {
  const Vertex sources[] = {src};
  return bfs_kernel(g, sources, -1, {});
}

std::vector<int> bfs_distances_multi(const Graph& g, std::span<const Vertex> sources) {
  return bfs_kernel(g, sources, -1, {});
}

std::vector<Vertex> ball(const Graph& g, Vertex v, int r) {
  const Vertex sources[] = {v};
  return ball_of_set(g, sources, r);
}

std::vector<Vertex> ball_of_set(const Graph& g, std::span<const Vertex> sources, int r) {
  // Visit-list collection instead of the old all-vertices distance scan: the
  // cost is proportional to the ball, not to n. Output stays sorted.
  BfsScratch scratch;
  std::vector<Vertex> out;
  ball_kernel_into(g, sources, r, scratch, out);
  return out;
}

std::vector<std::vector<Vertex>> Components::groups() const {
  std::vector<std::vector<Vertex>> result(static_cast<std::size_t>(count));
  for (Vertex v = 0; v < static_cast<Vertex>(component.size()); ++v) {
    const int c = component[static_cast<std::size_t>(v)];
    if (c >= 0) result[static_cast<std::size_t>(c)].push_back(v);
  }
  return result;
}

Components connected_components(const Graph& g) { return components_without(g, {}); }

Components components_without(const Graph& g, std::span<const Vertex> removed) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  // Alive mask as bitset words: the mask fits in cache even for 100k-vertex
  // graphs, so the inner-loop membership test stays one shift+and.
  std::vector<std::uint64_t> alive((n + 63) / 64, ~std::uint64_t{0});
  for (Vertex v : removed) {
    if (!g.has_vertex(v)) throw std::invalid_argument("components_without: vertex out of range");
    alive[static_cast<std::size_t>(v) / 64] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(v) % 64));
  }
  const auto is_alive = [&](Vertex v) {
    return (alive[static_cast<std::size_t>(v) / 64] >> (static_cast<std::size_t>(v) % 64)) & 1;
  };
  Components result;
  result.component.assign(n, -1);
  std::vector<Vertex> current;
  std::vector<Vertex> next;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (!is_alive(s) || result.component[static_cast<std::size_t>(s)] != -1) continue;
    const int id = result.count++;
    result.component[static_cast<std::size_t>(s)] = id;
    current.assign(1, s);
    while (!current.empty()) {
      next.clear();
      for (Vertex u : current) {
        for (Vertex w : g.neighbors(u)) {
          if (!is_alive(w)) continue;
          if (result.component[static_cast<std::size_t>(w)] == -1) {
            result.component[static_cast<std::size_t>(w)] = id;
            next.push_back(w);
          }
        }
      }
      std::swap(current, next);
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

int eccentricity(const Graph& g, Vertex v) {
  const auto dist = bfs_distances(g, v);
  int ecc = 0;
  for (int d : dist) {
    if (d == -1) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  int diam = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const int ecc = eccentricity(g, v);
    if (ecc == -1) return -1;
    diam = std::max(diam, ecc);
  }
  return diam;
}

int weak_diameter(const Graph& g, std::span<const Vertex> s) {
  int result = 0;
  for (Vertex v : s) {
    const auto dist = bfs_distances(g, v);
    for (Vertex u : s) {
      const int d = dist[static_cast<std::size_t>(u)];
      if (d == -1) return -1;
      result = std::max(result, d);
    }
  }
  return result;
}

int distance(const Graph& g, Vertex u, Vertex v) {
  const auto dist = bfs_distances(g, u);
  return dist[static_cast<std::size_t>(v)];
}

}  // namespace lmds::graph
