#include "graph/generators.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"

namespace lmds::graph::gen {

namespace {

void require(bool cond, const char* message) {
  if (!cond) throw std::invalid_argument(message);
}

}  // namespace

Graph path(int n) {
  require(n >= 1, "path: n >= 1 required");
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(int n) {
  require(n >= 3, "cycle: n >= 3 required");
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph star(int n) {
  require(n >= 1, "star: n >= 1 required");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph complete(int n) {
  require(n >= 1, "complete: n >= 1 required");
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph complete_bipartite(int s, int t) {
  require(s >= 1 && t >= 1, "complete_bipartite: s, t >= 1 required");
  GraphBuilder b(s + t);
  for (Vertex u = 0; u < s; ++u) {
    for (Vertex v = s; v < s + t; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph grid(int rows, int cols) {
  require(rows >= 1 && cols >= 1, "grid: rows, cols >= 1 required");
  GraphBuilder b(rows * cols);
  const auto id = [cols](int r, int c) { return static_cast<Vertex>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph wheel(int n) {
  require(n >= 4, "wheel: n >= 4 required");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v + 1 < n ? v + 1 : 1);
  }
  return b.build();
}

Graph spider(int legs, int leg_length) {
  require(legs >= 1 && leg_length >= 1, "spider: legs, leg_length >= 1 required");
  GraphBuilder b(1 + legs * leg_length);
  Vertex next = 1;
  for (int leg = 0; leg < legs; ++leg) {
    Vertex prev = 0;
    for (int i = 0; i < leg_length; ++i) {
      b.add_edge(prev, next);
      prev = next++;
    }
  }
  return b.build();
}

Graph random_tree(int n, std::mt19937_64& rng) {
  require(n >= 1, "random_tree: n >= 1 required");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    std::uniform_int_distribution<Vertex> pick(0, v - 1);
    b.add_edge(v, pick(rng));
  }
  return b.build();
}

Graph caterpillar(int spine, int legs) {
  require(spine >= 1 && legs >= 0, "caterpillar: spine >= 1, legs >= 0 required");
  GraphBuilder b(spine * (1 + legs));
  for (Vertex v = 0; v + 1 < spine; ++v) b.add_edge(v, v + 1);
  Vertex next = spine;
  for (Vertex v = 0; v < spine; ++v) {
    for (int leg = 0; leg < legs; ++leg) b.add_edge(v, next++);
  }
  return b.build();
}

Graph theta_chain(int links, int parallel) {
  require(links >= 1, "theta_chain: links >= 1 required");
  require(parallel >= 1, "theta_chain: parallel >= 1 required");
  GraphBuilder b(links + 1);
  Vertex next = static_cast<Vertex>(links + 1);
  for (int link = 0; link < links; ++link) {
    const Vertex left = static_cast<Vertex>(link);
    const Vertex right = static_cast<Vertex>(link + 1);
    for (int p = 0; p < parallel; ++p) {
      b.add_edge(left, next);
      b.add_edge(next, right);
      ++next;
    }
  }
  return b.build();
}

Graph clique_with_pendants(int n) {
  require(n >= 2, "clique_with_pendants: n >= 2 required");
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  Vertex next = static_cast<Vertex>(n);
  for (Vertex v = 1; v < n; ++v) {
    b.add_edge(0, next);
    b.add_edge(v, next);
    ++next;
  }
  return b.build();
}

Graph apollonian(int n, std::mt19937_64& rng) {
  require(n >= 3, "apollonian: n >= 3 required");
  GraphBuilder b(n);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  std::vector<std::array<Vertex, 3>> faces = {{0, 1, 2}};
  for (Vertex v = 3; v < n; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, faces.size() - 1);
    const std::size_t f = pick(rng);
    const auto [a, c, d] = faces[f];
    b.add_edge(v, a);
    b.add_edge(v, c);
    b.add_edge(v, d);
    faces[f] = {a, c, v};
    faces.push_back({a, d, v});
    faces.push_back({c, d, v});
  }
  return b.build();
}

namespace {

// Adds a uniformly random triangulation of the polygon i..j (indices along
// the outer cycle) to the builder. Uses the standard recursive split: the
// edge (i, j) picks a random apex k strictly between them.
void triangulate(GraphBuilder& b, Vertex i, Vertex j, std::mt19937_64& rng) {
  if (j - i < 2) return;
  std::uniform_int_distribution<Vertex> pick(i + 1, j - 1);
  const Vertex k = pick(rng);
  if (k - i >= 2) b.add_edge(i, k);
  if (j - k >= 2) b.add_edge(k, j);
  triangulate(b, i, k, rng);
  triangulate(b, k, j, rng);
}

}  // namespace

Graph random_maximal_outerplanar(int n, std::mt19937_64& rng) {
  require(n >= 3, "random_maximal_outerplanar: n >= 3 required");
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  triangulate(b, 0, static_cast<Vertex>(n - 1), rng);
  return b.build();
}

Graph random_outerplanar(int n, double keep_chord, std::mt19937_64& rng) {
  const Graph maximal = random_maximal_outerplanar(n, rng);
  GraphBuilder b(n);
  std::bernoulli_distribution keep(keep_chord);
  for (const Edge e : maximal.edges()) {
    const bool cycle_edge = (e.v == e.u + 1) || (e.u == 0 && e.v == n - 1);
    if (cycle_edge || keep(rng)) b.add_edge(e.u, e.v);
  }
  return b.build();
}

Graph random_max_degree(int n, int max_degree, int extra_edges, std::mt19937_64& rng) {
  require(n >= 1, "random_max_degree: n >= 1 required");
  require(max_degree >= 2 || n <= max_degree + 1, "random_max_degree: max_degree too small");
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  GraphBuilder b(n);
  // Degree-capped random tree: attach each vertex to a random earlier vertex
  // with spare capacity.
  for (Vertex v = 1; v < n; ++v) {
    std::vector<Vertex> candidates;
    for (Vertex u = 0; u < v; ++u) {
      if (degree[static_cast<std::size_t>(u)] < max_degree) candidates.push_back(u);
    }
    require(!candidates.empty(), "random_max_degree: no attachment point (cap too tight)");
    std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
    const Vertex u = candidates[pick(rng)];
    b.add_edge(u, v);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  Graph tree = b.build();
  // Extra edges subject to the cap.
  int added = 0;
  int attempts = 0;
  std::uniform_int_distribution<Vertex> pick(0, static_cast<Vertex>(n - 1));
  while (added < extra_edges && attempts < 50 * std::max(1, extra_edges)) {
    ++attempts;
    const Vertex u = pick(rng);
    const Vertex v = pick(rng);
    if (u == v || tree.has_edge(u, v)) continue;
    if (degree[static_cast<std::size_t>(u)] >= max_degree ||
        degree[static_cast<std::size_t>(v)] >= max_degree)
      continue;
    b.add_edge(u, v);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
    tree = b.build();
    ++added;
  }
  return tree;
}

// The uint64_t-seed overloads each own a fresh engine, so one recorded seed
// regenerates one graph bit-for-bit (the soak harness's replay contract).
Graph random_tree(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_tree(n, rng);
}

Graph apollonian(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return apollonian(n, rng);
}

Graph random_maximal_outerplanar(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_maximal_outerplanar(n, rng);
}

Graph random_outerplanar(int n, double keep_chord, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_outerplanar(n, keep_chord, rng);
}

Graph random_max_degree(int n, int max_degree, int extra_edges, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_max_degree(n, max_degree, extra_edges, rng);
}

Graph random_connected(int n, int extra_edges, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_connected(n, extra_edges, rng);
}

Graph random_connected(int n, int extra_edges, std::mt19937_64& rng) {
  Graph tree = random_tree(n, rng);
  GraphBuilder b(n);
  for (const Edge e : tree.edges()) b.add_edge(e.u, e.v);
  int added = 0;
  int attempts = 0;
  std::uniform_int_distribution<Vertex> pick(0, static_cast<Vertex>(n - 1));
  Graph current = tree;
  while (added < extra_edges && attempts < 50 * std::max(1, extra_edges)) {
    ++attempts;
    const Vertex u = pick(rng);
    const Vertex v = pick(rng);
    if (u == v || current.has_edge(u, v)) continue;
    b.add_edge(u, v);
    current = b.build();
    ++added;
  }
  return current;
}

}  // namespace lmds::graph::gen
