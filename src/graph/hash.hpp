#pragma once
// 64-bit structural graph fingerprint. Hashes the exact CSR representation
// (vertex count, degrees, sorted adjacency), so two Graph objects hash equal
// iff they are equal under operator== — same labelling, same edges. It is
// NOT an isomorphism invariant: relabelling a graph changes its hash.
//
// Primary consumer: the api response cache, which keys cached Responses on
// (graph_hash, solver, canonicalized options). A 64-bit fingerprint makes
// the cache key cheap to store and compare; the collision probability across
// a cache of millions of distinct graphs is ~2^-40, which the serving layer
// accepts by design (see src/api/cache.hpp).

#include <cstdint>

#include "graph/graph.hpp"

namespace lmds::graph {

/// Fingerprint of the graph's exact structure (splitmix64-mixed stream over
/// n and every adjacency list). Deterministic across runs and platforms.
std::uint64_t graph_hash(const Graph& g);

/// One splitmix64 avalanche step — exposed so cache-key composition can
/// reuse the same mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace lmds::graph
