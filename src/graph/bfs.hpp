#pragma once
// Breadth-first-search utilities: distances, balls N^r[·], connected
// components, eccentricities, diameter and weak diameter. These are the
// primitives the LOCAL-model view gathering and the local-cut machinery are
// expressed with.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::graph {

/// Distances from src; -1 for unreachable vertices.
std::vector<int> bfs_distances(const Graph& g, Vertex src);

/// Distances from the nearest of the given sources; -1 for unreachable.
std::vector<int> bfs_distances_multi(const Graph& g, std::span<const Vertex> sources);

/// Sorted ball N^r[v]: all vertices at distance <= r from v.
std::vector<Vertex> ball(const Graph& g, Vertex v, int r);

/// Sorted ball N^r[S] around a set of sources.
std::vector<Vertex> ball_of_set(const Graph& g, std::span<const Vertex> sources, int r);

/// Result of a connected-components labelling.
struct Components {
  std::vector<int> component;  ///< component id per vertex, 0..count-1
  int count = 0;

  /// Vertices of each component, sorted.
  std::vector<std::vector<Vertex>> groups() const;
};

/// Connected components of g.
Components connected_components(const Graph& g);

/// Connected components of g with the given vertices deleted. Removed
/// vertices get component id -1.
Components components_without(const Graph& g, std::span<const Vertex> removed);

/// True iff g is connected (the empty graph counts as connected).
bool is_connected(const Graph& g);

/// Eccentricity of v (max distance to any reachable vertex); -1 if g has
/// unreachable vertices from v.
int eccentricity(const Graph& g, Vertex v);

/// Diameter; -1 if disconnected. O(n·m) — intended for tests and benches on
/// moderate instances.
int diameter(const Graph& g);

/// Weak diameter of the set S: max over u,v in S of d_G(u, v), where
/// distances are measured in the *whole* graph g. Returns -1 if some pair is
/// disconnected in g. This is the notion used by asymptotic dimension (§3).
int weak_diameter(const Graph& g, std::span<const Vertex> s);

/// Distance between two vertices (-1 if disconnected).
int distance(const Graph& g, Vertex u, Vertex v);

}  // namespace lmds::graph
