#pragma once
// Breadth-first-search utilities: distances, balls N^r[·], connected
// components, eccentricities, diameter and weak diameter. These are the
// primitives the LOCAL-model view gathering and the local-cut machinery are
// expressed with.
//
// Two API tiers. The plain free functions allocate their outputs — right for
// one-off queries. The BfsScratch + *_into variants are the hot-path tier:
// one scratch arena holds the n-sized distance/visited buffers and frontier
// vectors, epoch-stamped so consecutive traversals reuse them without an
// O(n) clear — a per-solve allocation, not a per-vertex one.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::graph {

/// Reusable BFS arena. begin(n) sizes the buffers for an n-vertex graph and
/// bumps the visited epoch; marks from earlier traversals become invalid
/// without touching memory. dist[v] is meaningful only where seen(v).
///
/// Ownership rule (docs/ARCHITECTURE.md "hot path"): a scratch is owned by
/// exactly one thread at a time. Parallel per-vertex loops give each worker
/// its own BfsScratch; the arenas grow to the largest graph seen and are
/// reused across every traversal that worker performs.
class BfsScratch {
 public:
  /// Prepares for one traversal of an n-vertex graph: grows buffers, clears
  /// the visit list, invalidates all previous marks (O(1) amortised).
  void begin(int n) {
    const auto sn = static_cast<std::size_t>(n);
    if (stamp_.size() < sn) {
      stamp_.resize(sn, 0);
      dist_.resize(sn);
    }
    if (++epoch_ == 0) {  // stamp wrap: one real clear every 2^32 traversals
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    visited_.clear();
    current_.clear();
    next_.clear();
  }

  bool seen(Vertex v) const { return stamp_[static_cast<std::size_t>(v)] == epoch_; }
  int dist(Vertex v) const { return dist_[static_cast<std::size_t>(v)]; }

  /// Marks v visited at distance d and records it in the visit list.
  void mark(Vertex v, int d) {
    stamp_[static_cast<std::size_t>(v)] = epoch_;
    dist_[static_cast<std::size_t>(v)] = d;
    visited_.push_back(v);
  }

  /// Vertices visited since begin(), in visit order.
  const std::vector<Vertex>& visited() const { return visited_; }

  /// Frontier vectors for level-synchronous expansion (callers swap them).
  std::vector<Vertex>& current() { return current_; }
  std::vector<Vertex>& next() { return next_; }

 private:
  std::vector<int> dist_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<Vertex> visited_;
  std::vector<Vertex> current_;
  std::vector<Vertex> next_;
};

/// Sorted ball N^r[v] written into `out` (cleared first) using the caller's
/// scratch — the allocation-free variant of ball(). After the call,
/// scratch.seen(u)/scratch.dist(u) answer membership and distance queries
/// for exactly the ball members, until the next begin().
void ball_into(const Graph& g, Vertex v, int r, BfsScratch& scratch, std::vector<Vertex>& out);

/// Sorted ball N^r[S] written into `out`; scratch marks as in ball_into.
void ball_of_set_into(const Graph& g, std::span<const Vertex> sources, int r,
                      BfsScratch& scratch, std::vector<Vertex>& out);

/// Distances from src; -1 for unreachable vertices.
std::vector<int> bfs_distances(const Graph& g, Vertex src);

/// Distances from the nearest of the given sources; -1 for unreachable.
std::vector<int> bfs_distances_multi(const Graph& g, std::span<const Vertex> sources);

/// Sorted ball N^r[v]: all vertices at distance <= r from v.
std::vector<Vertex> ball(const Graph& g, Vertex v, int r);

/// Sorted ball N^r[S] around a set of sources.
std::vector<Vertex> ball_of_set(const Graph& g, std::span<const Vertex> sources, int r);

/// Result of a connected-components labelling.
struct Components {
  std::vector<int> component;  ///< component id per vertex, 0..count-1
  int count = 0;

  /// Vertices of each component, sorted.
  std::vector<std::vector<Vertex>> groups() const;
};

/// Connected components of g.
Components connected_components(const Graph& g);

/// Connected components of g with the given vertices deleted. Removed
/// vertices get component id -1.
Components components_without(const Graph& g, std::span<const Vertex> removed);

/// True iff g is connected (the empty graph counts as connected).
bool is_connected(const Graph& g);

/// Eccentricity of v (max distance to any reachable vertex); -1 if g has
/// unreachable vertices from v.
int eccentricity(const Graph& g, Vertex v);

/// Diameter; -1 if disconnected. O(n·m) — intended for tests and benches on
/// moderate instances.
int diameter(const Graph& g);

/// Weak diameter of the set S: max over u,v in S of d_G(u, v), where
/// distances are measured in the *whole* graph g. Returns -1 if some pair is
/// disconnected in g. This is the notion used by asymptotic dimension (§3).
int weak_diameter(const Graph& g, std::span<const Vertex> s);

/// Distance between two vertices (-1 if disconnected).
int distance(const Graph& g, Vertex u, Vertex v);

}  // namespace lmds::graph
