#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace lmds::graph {

Vertex GraphBuilder::add_vertex() {
  adjacency_.emplace_back();
  return static_cast<Vertex>(adjacency_.size() - 1);
}

void GraphBuilder::ensure_vertices(int n) {
  if (n > num_vertices()) adjacency_.resize(static_cast<std::size_t>(n));
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u < 0 || v < 0) throw std::invalid_argument("GraphBuilder: negative vertex index");
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop not allowed");
  ensure_vertices(std::max(u, v) + 1);
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
}

void GraphBuilder::add_path(const std::vector<Vertex>& vertices) {
  for (std::size_t i = 0; i + 1 < vertices.size(); ++i) {
    add_edge(vertices[i], vertices[i + 1]);
  }
}

void GraphBuilder::add_cycle(const std::vector<Vertex>& vertices) {
  if (vertices.size() < 3) throw std::invalid_argument("GraphBuilder: cycle needs >= 3 vertices");
  add_path(vertices);
  add_edge(vertices.back(), vertices.front());
}

Graph GraphBuilder::build() const { return Graph(adjacency_); }

}  // namespace lmds::graph
