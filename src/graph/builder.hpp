#pragma once
// Mutable builder for Graph. Accumulates edges (duplicates and both
// orientations are fine), then produces the immutable CSR Graph.

#include <vector>

#include "graph/graph.hpp"

namespace lmds::graph {

/// Incremental graph construction. Example:
///
///   GraphBuilder b(4);
///   b.add_edge(0, 1);
///   b.add_edge(1, 2);
///   Graph g = b.build();
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-creates n isolated vertices 0..n-1.
  explicit GraphBuilder(int n) : adjacency_(static_cast<std::size_t>(n)) {}

  /// Number of vertices currently allocated.
  int num_vertices() const { return static_cast<int>(adjacency_.size()); }

  /// Adds a new isolated vertex and returns its index.
  Vertex add_vertex();

  /// Ensures vertices 0..n-1 exist.
  void ensure_vertices(int n);

  /// Adds the undirected edge {u, v}. Vertices are created on demand.
  /// Self-loops are rejected (throws std::invalid_argument); duplicate edges
  /// are deduplicated at build time.
  void add_edge(Vertex u, Vertex v);

  /// Convenience: adds a path u0-u1-...-uk along the given vertices.
  void add_path(const std::vector<Vertex>& vertices);

  /// Convenience: adds a cycle along the given vertices (requires >= 3).
  void add_cycle(const std::vector<Vertex>& vertices);

  /// Produces the immutable graph. The builder remains usable afterwards.
  Graph build() const;

 private:
  std::vector<std::vector<Vertex>> adjacency_;
};

}  // namespace lmds::graph
