#pragma once
// Deterministic graph generators for tests and benchmarks.
//
// Families relevant to the paper:
//  * theta_chain      — the adversarial K_{2,t}-minor-free family on which the
//                       3-round rule of Theorem 4.4 is Θ(t)-approximate while
//                       Algorithm 1 stays O(1)-approximate (see DESIGN.md §4);
//  * clique_with_pendants — the Section 4 example showing that vertices in
//                       (non-interesting) 2-cuts can be ω(MDS(G));
//  * random_maximal_outerplanar / apollonian — the outerplanar / planar rows
//                       of Table 1;
//  * random_max_degree — the K_{1,t}-minor-free row (max degree <= t-1).
//
// All random generators take an explicit std::mt19937_64 so every experiment
// is reproducible from its seed — there is no global or unseeded RNG anywhere
// in the library. Each rng-taking generator also has a uint64_t-seed overload
// that owns a fresh engine, so one number fully determines one graph; the
// soak harness (src/soak) records exactly that number per generated graph and
// its repro files replay from it.

#include <cstdint>
#include <random>

#include "graph/graph.hpp"

namespace lmds::graph::gen {

/// Path on n vertices (n >= 1).
Graph path(int n);

/// Cycle on n vertices (n >= 3).
Graph cycle(int n);

/// Star K_{1,n-1}: vertex 0 is the centre (n >= 1).
Graph star(int n);

/// Complete graph K_n.
Graph complete(int n);

/// Complete bipartite K_{s,t}; left part is 0..s-1.
Graph complete_bipartite(int s, int t);

/// rows x cols grid (both >= 1).
Graph grid(int rows, int cols);

/// Wheel: cycle on n-1 vertices plus a hub (vertex 0) adjacent to all.
Graph wheel(int n);

/// Spider / subdivided star: `legs` paths of length `leg_length` sharing an
/// endpoint (vertex 0).
Graph spider(int legs, int leg_length);

/// Random tree built by uniform random attachment (vertex i attaches to a
/// uniform vertex < i).
Graph random_tree(int n, std::mt19937_64& rng);
Graph random_tree(int n, std::uint64_t seed);

/// Caterpillar: spine path of `spine` vertices, each with `legs` pendant
/// leaves.
Graph caterpillar(int spine, int legs);

/// Theta chain: hubs h_0..h_L (L = links); between consecutive hubs lie
/// `parallel` internal vertices each adjacent to both hubs (no hub-hub edge).
/// The result is K_{2, parallel+1}-minor-free (tested in tests/test_minor).
/// Vertices 0..L are the hubs; internals follow.
Graph theta_chain(int links, int parallel);

/// The Section 4 example: K_n plus, for every v != 0, a pendant vertex x_v
/// adjacent to exactly {0, v}. MDS = 1 (vertex 0) yet every clique vertex
/// lies in a minimal 2-cut. Clique vertices are 0..n-1.
Graph clique_with_pendants(int n);

/// Random Apollonian network (planar 3-tree): start from a triangle, insert
/// each new vertex into a uniformly random face. Planar and 3-connected for
/// n >= 4.
Graph apollonian(int n, std::mt19937_64& rng);
Graph apollonian(int n, std::uint64_t seed);

/// Random maximal outerplanar graph: cycle 0..n-1 plus a uniformly random
/// triangulation of the polygon (n >= 3).
Graph random_maximal_outerplanar(int n, std::mt19937_64& rng);
Graph random_maximal_outerplanar(int n, std::uint64_t seed);

/// Random outerplanar graph: maximal outerplanar with each chord kept with
/// probability keep_chord (the outer cycle is always kept, so the result is
/// connected).
Graph random_outerplanar(int n, double keep_chord, std::mt19937_64& rng);
Graph random_outerplanar(int n, double keep_chord, std::uint64_t seed);

/// Random connected graph with maximum degree <= max_degree: a random
/// degree-capped tree plus random extra edges subject to the cap. Such graphs
/// are K_{1,max_degree+1}-minor-free... in the star-minor sense used by the
/// K_{1,t} row of Table 1 (a K_{1,t} *subgraph* needs a degree-t vertex).
Graph random_max_degree(int n, int max_degree, int extra_edges, std::mt19937_64& rng);
Graph random_max_degree(int n, int max_degree, int extra_edges, std::uint64_t seed);

/// Random connected graph: random tree plus `extra_edges` uniform random
/// non-edges.
Graph random_connected(int n, int extra_edges, std::mt19937_64& rng);
Graph random_connected(int n, int extra_edges, std::uint64_t seed);

}  // namespace lmds::graph::gen
