#include "graph/ops.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace lmds::graph {

std::vector<Vertex> Subgraph::lift(std::span<const Vertex> sub_vertices) const {
  std::vector<Vertex> result;
  result.reserve(sub_vertices.size());
  for (Vertex v : sub_vertices) result.push_back(to_parent[static_cast<std::size_t>(v)]);
  return result;
}

Subgraph induced_subgraph(const Graph& g, std::span<const Vertex> vertices) {
  Subgraph result;
  result.to_parent.assign(vertices.begin(), vertices.end());
  std::sort(result.to_parent.begin(), result.to_parent.end());
  if (std::adjacent_find(result.to_parent.begin(), result.to_parent.end()) !=
      result.to_parent.end()) {
    throw std::invalid_argument("induced_subgraph: duplicate vertices");
  }
  result.from_parent.assign(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  for (std::size_t i = 0; i < result.to_parent.size(); ++i) {
    const Vertex p = result.to_parent[i];
    if (!g.has_vertex(p)) throw std::invalid_argument("induced_subgraph: vertex out of range");
    result.from_parent[static_cast<std::size_t>(p)] = static_cast<Vertex>(i);
  }
  std::vector<std::vector<Vertex>> adjacency(result.to_parent.size());
  for (std::size_t i = 0; i < result.to_parent.size(); ++i) {
    for (Vertex w : g.neighbors(result.to_parent[i])) {
      const Vertex j = result.from_parent[static_cast<std::size_t>(w)];
      if (j != kNoVertex) adjacency[i].push_back(j);
    }
  }
  result.graph = Graph(adjacency);
  return result;
}

Subgraph remove_vertices(const Graph& g, std::span<const Vertex> vertices) {
  std::vector<char> removed(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : vertices) {
    if (!g.has_vertex(v)) throw std::invalid_argument("remove_vertices: vertex out of range");
    removed[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<Vertex> keep;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!removed[static_cast<std::size_t>(v)]) keep.push_back(v);
  }
  return induced_subgraph(g, keep);
}

TwinReduction remove_true_twins(const Graph& g) {
  // Group vertices by their sorted closed neighbourhood.
  std::map<std::vector<Vertex>, std::vector<Vertex>> classes;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    classes[g.closed_neighborhood(v)].push_back(v);
  }
  TwinReduction result;
  result.representative.assign(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  std::vector<Vertex> reps;
  for (const auto& [nbhd, members] : classes) {
    const Vertex rep = *std::min_element(members.begin(), members.end());
    reps.push_back(rep);
    for (Vertex v : members) result.representative[static_cast<std::size_t>(v)] = rep;
  }
  std::sort(reps.begin(), reps.end());
  result.num_classes = static_cast<int>(reps.size());
  result.reduced = induced_subgraph(g, reps);
  return result;
}

std::vector<Vertex> TwinReduction::lift_solution(std::span<const Vertex> reduced_solution) const {
  return reduced.lift(reduced_solution);
}

Graph contract_partition(const Graph& g, const std::vector<std::vector<Vertex>>& parts) {
  std::vector<int> part_of(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) throw std::invalid_argument("contract_partition: empty part");
    for (Vertex v : parts[i]) {
      if (!g.has_vertex(v)) throw std::invalid_argument("contract_partition: vertex out of range");
      if (part_of[static_cast<std::size_t>(v)] != -1) {
        throw std::invalid_argument("contract_partition: parts overlap");
      }
      part_of[static_cast<std::size_t>(v)] = static_cast<int>(i);
    }
  }
  GraphBuilder b(static_cast<int>(parts.size()));
  for (const Edge e : g.edges()) {
    const int pu = part_of[static_cast<std::size_t>(e.u)];
    const int pv = part_of[static_cast<std::size_t>(e.v)];
    if (pu == -1 || pv == -1 || pu == pv) continue;
    b.add_edge(static_cast<Vertex>(pu), static_cast<Vertex>(pv));
  }
  return b.build();
}

Graph power(const Graph& g, int r) {
  if (r < 1) throw std::invalid_argument("power: r must be >= 1");
  std::vector<std::vector<Vertex>> adjacency(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex w : ball(g, v, r)) {
      if (w != v) adjacency[static_cast<std::size_t>(v)].push_back(w);
    }
  }
  return Graph(adjacency);
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  GraphBuilder builder(a.num_vertices() + b.num_vertices());
  for (const Edge e : a.edges()) builder.add_edge(e.u, e.v);
  const Vertex shift = a.num_vertices();
  for (const Edge e : b.edges()) builder.add_edge(e.u + shift, e.v + shift);
  return builder.build();
}

std::vector<std::vector<Vertex>> r_components(const Graph& g, std::span<const Vertex> s, int r) {
  if (r < 1) throw std::invalid_argument("r_components: r must be >= 1");
  std::vector<char> in_s(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : s) {
    if (!g.has_vertex(v)) throw std::invalid_argument("r_components: vertex out of range");
    in_s[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<int> comp(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<std::vector<Vertex>> result;
  for (Vertex start : s) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    const int id = static_cast<int>(result.size());
    result.emplace_back();
    std::queue<Vertex> queue;
    queue.push(start);
    comp[static_cast<std::size_t>(start)] = id;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop();
      result.back().push_back(u);
      // All S-vertices within distance r of u join the same r-component.
      for (Vertex w : ball(g, u, r)) {
        if (w == u || !in_s[static_cast<std::size_t>(w)]) continue;
        if (comp[static_cast<std::size_t>(w)] == -1) {
          comp[static_cast<std::size_t>(w)] = id;
          queue.push(w);
        }
      }
    }
    std::sort(result.back().begin(), result.back().end());
  }
  return result;
}

}  // namespace lmds::graph
