#include "graph/ops.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <queue>
#include <stdexcept>
#include <string>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace lmds::graph {

std::vector<Vertex> Subgraph::lift(std::span<const Vertex> sub_vertices) const {
  std::vector<Vertex> result;
  result.reserve(sub_vertices.size());
  for (Vertex v : sub_vertices) result.push_back(to_parent[static_cast<std::size_t>(v)]);
  return result;
}

namespace {

// Normalizes one edit list: endpoint checks, u < v orientation, sort,
// duplicate rejection. `what` names the list in error messages.
std::vector<Edge> normalize_edits(const std::vector<Edge>& edits, const char* what) {
  std::vector<Edge> result;
  result.reserve(edits.size());
  for (Edge e : edits) {
    if (e.u < 0 || e.v < 0) {
      throw std::invalid_argument(std::string("apply_patch: negative endpoint in \"") + what +
                                  "\"");
    }
    if (e.u == e.v) {
      throw std::invalid_argument("apply_patch: self-loop {" + std::to_string(e.u) + "," +
                                  std::to_string(e.v) + "} in \"" + what + "\"");
    }
    if (e.u > e.v) std::swap(e.u, e.v);
    result.push_back(e);
  }
  std::sort(result.begin(), result.end());
  const auto dup = std::adjacent_find(result.begin(), result.end());
  if (dup != result.end()) {
    throw std::invalid_argument("apply_patch: duplicate edge {" + std::to_string(dup->u) + "," +
                                std::to_string(dup->v) + "} in \"" + what + "\"");
  }
  return result;
}

}  // namespace

PatchedGraph apply_patch(const Graph& parent, const GraphPatch& patch) {
  PatchedGraph result;
  result.added = normalize_edits(patch.add, "add");
  result.removed = normalize_edits(patch.del, "del");

  std::vector<Edge> overlap;
  std::set_intersection(result.added.begin(), result.added.end(), result.removed.begin(),
                        result.removed.end(), std::back_inserter(overlap));
  if (!overlap.empty()) {
    throw std::invalid_argument("apply_patch: edge {" + std::to_string(overlap.front().u) + "," +
                                std::to_string(overlap.front().v) +
                                "} appears in both \"add\" and \"del\"");
  }

  const int parent_n = parent.num_vertices();
  int n = parent_n;
  for (const Edge& e : result.added) n = std::max(n, e.v + 1);
  for (const Edge& e : result.removed) {
    if (e.v >= parent_n || !parent.has_edge(e.u, e.v)) {
      throw std::invalid_argument("apply_patch: deleted edge {" + std::to_string(e.u) + "," +
                                  std::to_string(e.v) + "} is not in the parent graph");
    }
  }
  for (const Edge& e : result.added) {
    if (e.v < parent_n && parent.has_edge(e.u, e.v)) {
      throw std::invalid_argument("apply_patch: added edge {" + std::to_string(e.u) + "," +
                                  std::to_string(e.v) + "} is already present");
    }
  }
  if (patch.n >= 0) {
    if (patch.n < n) {
      throw std::invalid_argument("apply_patch: \"n\"=" + std::to_string(patch.n) +
                                  " is below the required vertex count " + std::to_string(n) +
                                  " (patches never delete vertices)");
    }
    n = patch.n;
  }

  // Per-endpoint edit deltas; vertices absent from both maps keep their
  // parent adjacency span byte-for-byte.
  std::map<Vertex, std::vector<Vertex>> add_at;
  std::map<Vertex, std::vector<Vertex>> del_at;
  for (const Edge& e : result.added) {
    add_at[e.u].push_back(e.v);
    add_at[e.v].push_back(e.u);
  }
  for (const Edge& e : result.removed) {
    del_at[e.u].push_back(e.v);
    del_at[e.v].push_back(e.u);
  }

  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    std::size_t deg = v < parent_n ? static_cast<std::size_t>(parent.degree(v)) : 0;
    if (const auto it = add_at.find(v); it != add_at.end()) deg += it->second.size();
    if (const auto it = del_at.find(v); it != del_at.end()) deg -= it->second.size();
    offsets[static_cast<std::size_t>(v) + 1] = offsets[static_cast<std::size_t>(v)] + deg;
  }
  std::vector<Vertex> neighbors(offsets.back());
  for (Vertex v = 0; v < n; ++v) {
    Vertex* out = neighbors.data() + offsets[static_cast<std::size_t>(v)];
    const std::span<const Vertex> old =
        v < parent_n ? parent.neighbors(v) : std::span<const Vertex>{};
    const auto add_it = add_at.find(v);
    const auto del_it = del_at.find(v);
    if (add_it == add_at.end() && del_it == del_at.end()) {
      out = std::copy(old.begin(), old.end(), out);
      continue;
    }
    // Rebuild this one list: merge (old \ dels) with the sorted adds.
    std::vector<Vertex>* adds = add_it != add_at.end() ? &add_it->second : nullptr;
    if (adds) std::sort(adds->begin(), adds->end());
    std::vector<char> drop;
    if (del_it != del_at.end()) {
      drop.assign(old.size(), 0);
      for (Vertex w : del_it->second) {
        const auto pos = std::lower_bound(old.begin(), old.end(), w);
        drop[static_cast<std::size_t>(pos - old.begin())] = 1;
      }
    }
    std::size_t ai = 0;
    for (std::size_t i = 0; i < old.size(); ++i) {
      if (!drop.empty() && drop[i]) continue;
      while (adds && ai < adds->size() && (*adds)[ai] < old[i]) *out++ = (*adds)[ai++];
      *out++ = old[i];
    }
    while (adds && ai < adds->size()) *out++ = (*adds)[ai++];
  }
  result.graph = Graph(std::move(offsets), std::move(neighbors));
  return result;
}

Subgraph induced_subgraph(const Graph& g, std::span<const Vertex> vertices) {
  Subgraph result;
  result.to_parent.assign(vertices.begin(), vertices.end());
  std::sort(result.to_parent.begin(), result.to_parent.end());
  if (std::adjacent_find(result.to_parent.begin(), result.to_parent.end()) !=
      result.to_parent.end()) {
    throw std::invalid_argument("induced_subgraph: duplicate vertices");
  }
  result.from_parent.assign(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  for (std::size_t i = 0; i < result.to_parent.size(); ++i) {
    const Vertex p = result.to_parent[i];
    if (!g.has_vertex(p)) throw std::invalid_argument("induced_subgraph: vertex out of range");
    result.from_parent[static_cast<std::size_t>(p)] = static_cast<Vertex>(i);
  }
  // CSR-native assembly: to_parent is sorted, so relabelling is monotone and
  // every copied row stays sorted — the trusted constructor's invariants
  // hold by construction, no per-row sort or validating rebuild needed.
  const std::size_t k = result.to_parent.size();
  std::vector<std::size_t> offsets(k + 1, 0);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t deg = 0;
    for (Vertex w : g.neighbors(result.to_parent[i])) {
      if (result.from_parent[static_cast<std::size_t>(w)] != kNoVertex) ++deg;
    }
    offsets[i + 1] = offsets[i] + deg;
  }
  std::vector<Vertex> neighbors(offsets.back());
  for (std::size_t i = 0; i < k; ++i) {
    Vertex* out = neighbors.data() + offsets[i];
    for (Vertex w : g.neighbors(result.to_parent[i])) {
      const Vertex j = result.from_parent[static_cast<std::size_t>(w)];
      if (j != kNoVertex) *out++ = j;
    }
  }
  result.graph = detail::TrustedCsr::build(std::move(offsets), std::move(neighbors));
  return result;
}

Subgraph remove_vertices(const Graph& g, std::span<const Vertex> vertices) {
  std::vector<char> removed(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : vertices) {
    if (!g.has_vertex(v)) throw std::invalid_argument("remove_vertices: vertex out of range");
    removed[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<Vertex> keep;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!removed[static_cast<std::size_t>(v)]) keep.push_back(v);
  }
  return induced_subgraph(g, keep);
}

TwinReduction remove_true_twins(const Graph& g) {
  // Group vertices by their sorted closed neighbourhood.
  std::map<std::vector<Vertex>, std::vector<Vertex>> classes;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    classes[g.closed_neighborhood(v)].push_back(v);
  }
  TwinReduction result;
  result.representative.assign(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  std::vector<Vertex> reps;
  for (const auto& [nbhd, members] : classes) {
    const Vertex rep = *std::min_element(members.begin(), members.end());
    reps.push_back(rep);
    for (Vertex v : members) result.representative[static_cast<std::size_t>(v)] = rep;
  }
  std::sort(reps.begin(), reps.end());
  result.num_classes = static_cast<int>(reps.size());
  result.reduced = induced_subgraph(g, reps);
  return result;
}

std::vector<Vertex> TwinReduction::lift_solution(std::span<const Vertex> reduced_solution) const {
  return reduced.lift(reduced_solution);
}

Graph contract_partition(const Graph& g, const std::vector<std::vector<Vertex>>& parts) {
  std::vector<int> part_of(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) throw std::invalid_argument("contract_partition: empty part");
    for (Vertex v : parts[i]) {
      if (!g.has_vertex(v)) throw std::invalid_argument("contract_partition: vertex out of range");
      if (part_of[static_cast<std::size_t>(v)] != -1) {
        throw std::invalid_argument("contract_partition: parts overlap");
      }
      part_of[static_cast<std::size_t>(v)] = static_cast<int>(i);
    }
  }
  GraphBuilder b(static_cast<int>(parts.size()));
  for (const Edge e : g.edges()) {
    const int pu = part_of[static_cast<std::size_t>(e.u)];
    const int pv = part_of[static_cast<std::size_t>(e.v)];
    if (pu == -1 || pv == -1 || pu == pv) continue;
    b.add_edge(static_cast<Vertex>(pu), static_cast<Vertex>(pv));
  }
  return b.build();
}

Graph power(const Graph& g, int r) {
  if (r < 1) throw std::invalid_argument("power: r must be >= 1");
  std::vector<std::vector<Vertex>> adjacency(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex w : ball(g, v, r)) {
      if (w != v) adjacency[static_cast<std::size_t>(v)].push_back(w);
    }
  }
  return Graph(adjacency);
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  GraphBuilder builder(a.num_vertices() + b.num_vertices());
  for (const Edge e : a.edges()) builder.add_edge(e.u, e.v);
  const Vertex shift = a.num_vertices();
  for (const Edge e : b.edges()) builder.add_edge(e.u + shift, e.v + shift);
  return builder.build();
}

std::vector<std::vector<Vertex>> r_components(const Graph& g, std::span<const Vertex> s, int r) {
  if (r < 1) throw std::invalid_argument("r_components: r must be >= 1");
  std::vector<char> in_s(static_cast<std::size_t>(g.num_vertices()), 0);
  for (Vertex v : s) {
    if (!g.has_vertex(v)) throw std::invalid_argument("r_components: vertex out of range");
    in_s[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<int> comp(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<std::vector<Vertex>> result;
  for (Vertex start : s) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    const int id = static_cast<int>(result.size());
    result.emplace_back();
    std::queue<Vertex> queue;
    queue.push(start);
    comp[static_cast<std::size_t>(start)] = id;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop();
      result.back().push_back(u);
      // All S-vertices within distance r of u join the same r-component.
      for (Vertex w : ball(g, u, r)) {
        if (w == u || !in_s[static_cast<std::size_t>(w)]) continue;
        if (comp[static_cast<std::size_t>(w)] == -1) {
          comp[static_cast<std::size_t>(w)] = id;
          queue.push(w);
        }
      }
    }
    std::sort(result.back().begin(), result.back().end());
  }
  return result;
}

}  // namespace lmds::graph
