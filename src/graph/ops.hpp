#pragma once
// Structural graph operations: induced subgraphs (with parent mappings),
// vertex deletion, true-twin reduction (§2 "true-twin-less graph"),
// contractions (used by the minor machinery), graph powers (used by
// r-components in the asymptotic-dimension module) and disjoint unions.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::graph {

/// One batch of edge edits against a parent graph — the payload of the
/// serving layer's patch_graph verb and the provenance record behind the
/// executor's ball-granular incremental re-solve. Edges need not be
/// normalized (u < v) or sorted; apply_patch normalizes.
struct GraphPatch {
  std::vector<Edge> add;  ///< edges to insert; must be absent from the parent
  std::vector<Edge> del;  ///< edges to remove; must be present in the parent
  /// Vertex count of the patched graph; -1 keeps the parent's count (grown
  /// to cover any added endpoint). A patch may only grow the vertex set —
  /// vertex deletion would renumber and break every stored handle mapping.
  int n = -1;
};

/// The patched graph plus the normalized edit lists (u < v, sorted,
/// duplicate-free) actually applied — GraphStore records these as the child
/// handle's lineage so a later solve can bound the edit's radius-r impact.
struct PatchedGraph {
  Graph graph;
  std::vector<Edge> added;
  std::vector<Edge> removed;
};

/// Applies a batch of edge edits to `parent`. Unchanged adjacency spans are
/// copied wholesale from the parent's CSR (no re-sort, no re-validation);
/// only vertices incident to an edit get their lists rebuilt. Throws
/// std::invalid_argument on any malformed edit: a self-loop or negative
/// endpoint, a duplicate within add or del, an added edge already present,
/// a deleted edge absent, an edge both added and deleted, or an explicit
/// `n` smaller than the parent's vertex count / an added endpoint.
PatchedGraph apply_patch(const Graph& parent, const GraphPatch& patch);

/// An induced subgraph together with the mapping back to the parent graph.
struct Subgraph {
  Graph graph;                     ///< the induced subgraph, vertices relabelled 0..k-1
  std::vector<Vertex> to_parent;   ///< to_parent[i] = vertex of the parent graph
  std::vector<Vertex> from_parent; ///< from_parent[v] = index in subgraph, or kNoVertex

  /// Maps a set of subgraph vertices back to parent indices.
  std::vector<Vertex> lift(std::span<const Vertex> sub_vertices) const;
};

/// Induced subgraph on the given vertices (need not be sorted; duplicates are
/// an error).
Subgraph induced_subgraph(const Graph& g, std::span<const Vertex> vertices);

/// Induced subgraph on V(g) minus the given vertices.
Subgraph remove_vertices(const Graph& g, std::span<const Vertex> vertices);

/// Result of collapsing all true-twin classes to one representative each
/// (the paper's "true-twin-less graph associated to G", §2). The
/// representative of each class is its minimum vertex. MDS is preserved:
/// MDS(G⁻) = MDS(G), and any dominating set of G⁻ dominates G.
struct TwinReduction {
  Subgraph reduced;                  ///< induced subgraph on representatives
  std::vector<Vertex> representative;///< representative[v] = class rep of v in the parent graph
  int num_classes = 0;

  /// Lifts a dominating set of the reduced graph to a dominating set of the
  /// parent graph (identity on representatives).
  std::vector<Vertex> lift_solution(std::span<const Vertex> reduced_solution) const;
};

/// Computes the true-twin reduction of g. Runs in O(m log m).
TwinReduction remove_true_twins(const Graph& g);

/// Contracts each part of the given partition to a single vertex. Parts must
/// be non-empty and disjoint but need not cover V(g); uncovered vertices are
/// dropped. Part i becomes vertex i; an edge {i, j} exists iff some edge of g
/// joins part i and part j. Parts are NOT required to induce connected
/// subgraphs (callers that need minors must ensure connectivity themselves;
/// see minor/minor_check.hpp).
Graph contract_partition(const Graph& g, const std::vector<std::vector<Vertex>>& parts);

/// r-th graph power: u ~ v iff 1 <= d_g(u, v) <= r.
Graph power(const Graph& g, int r);

/// Disjoint union; vertices of b are shifted by a.num_vertices().
Graph disjoint_union(const Graph& a, const Graph& b);

/// The "r-components" of a vertex set S (Section 3): connected components of
/// the graph on S where u ~ v iff d_G(u, v) <= r (distances in the whole
/// graph). Returns the components as sorted vertex lists.
std::vector<std::vector<Vertex>> r_components(const Graph& g, std::span<const Vertex> s, int r);

}  // namespace lmds::graph
