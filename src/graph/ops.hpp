#pragma once
// Structural graph operations: induced subgraphs (with parent mappings),
// vertex deletion, true-twin reduction (§2 "true-twin-less graph"),
// contractions (used by the minor machinery), graph powers (used by
// r-components in the asymptotic-dimension module) and disjoint unions.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::graph {

/// An induced subgraph together with the mapping back to the parent graph.
struct Subgraph {
  Graph graph;                     ///< the induced subgraph, vertices relabelled 0..k-1
  std::vector<Vertex> to_parent;   ///< to_parent[i] = vertex of the parent graph
  std::vector<Vertex> from_parent; ///< from_parent[v] = index in subgraph, or kNoVertex

  /// Maps a set of subgraph vertices back to parent indices.
  std::vector<Vertex> lift(std::span<const Vertex> sub_vertices) const;
};

/// Induced subgraph on the given vertices (need not be sorted; duplicates are
/// an error).
Subgraph induced_subgraph(const Graph& g, std::span<const Vertex> vertices);

/// Induced subgraph on V(g) minus the given vertices.
Subgraph remove_vertices(const Graph& g, std::span<const Vertex> vertices);

/// Result of collapsing all true-twin classes to one representative each
/// (the paper's "true-twin-less graph associated to G", §2). The
/// representative of each class is its minimum vertex. MDS is preserved:
/// MDS(G⁻) = MDS(G), and any dominating set of G⁻ dominates G.
struct TwinReduction {
  Subgraph reduced;                  ///< induced subgraph on representatives
  std::vector<Vertex> representative;///< representative[v] = class rep of v in the parent graph
  int num_classes = 0;

  /// Lifts a dominating set of the reduced graph to a dominating set of the
  /// parent graph (identity on representatives).
  std::vector<Vertex> lift_solution(std::span<const Vertex> reduced_solution) const;
};

/// Computes the true-twin reduction of g. Runs in O(m log m).
TwinReduction remove_true_twins(const Graph& g);

/// Contracts each part of the given partition to a single vertex. Parts must
/// be non-empty and disjoint but need not cover V(g); uncovered vertices are
/// dropped. Part i becomes vertex i; an edge {i, j} exists iff some edge of g
/// joins part i and part j. Parts are NOT required to induce connected
/// subgraphs (callers that need minors must ensure connectivity themselves;
/// see minor/minor_check.hpp).
Graph contract_partition(const Graph& g, const std::vector<std::vector<Vertex>>& parts);

/// r-th graph power: u ~ v iff 1 <= d_g(u, v) <= r.
Graph power(const Graph& g, int r);

/// Disjoint union; vertices of b are shifted by a.num_vertices().
Graph disjoint_union(const Graph& a, const Graph& b);

/// The "r-components" of a vertex set S (Section 3): connected components of
/// the graph on S where u ~ v iff d_G(u, v) <= r (distances in the whole
/// graph). Returns the components as sorted vertex lists.
std::vector<std::vector<Vertex>> r_components(const Graph& g, std::span<const Vertex> s, int r);

}  // namespace lmds::graph
