#include "graph/hash.hpp"

namespace lmds::graph {

std::uint64_t graph_hash(const Graph& g) {
  const int n = g.num_vertices();
  // Domain-separation constant so an empty graph does not hash to mix64(0)
  // of some other empty structure.
  std::uint64_t h = mix64(0x6c6d64735f677268ULL ^ static_cast<std::uint64_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    // Degree delimits each adjacency list, so ({0,1},{}) and ({0},{1})
    // streams cannot collide by concatenation.
    h = mix64(h ^ static_cast<std::uint64_t>(nbrs.size()));
    for (const Vertex u : nbrs) {
      h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)));
    }
  }
  return h;
}

}  // namespace lmds::graph
