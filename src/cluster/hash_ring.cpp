#include "cluster/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "graph/hash.hpp"

namespace lmds::cluster {

namespace {

std::uint64_t point_of(const std::string& peer, int vnode) {
  std::uint64_t h = 0x636c7573746572ULL;  // distinct seed from graph hashing
  for (const char c : peer) h = graph::mix64(h ^ static_cast<unsigned char>(c));
  return graph::mix64(h ^ static_cast<std::uint64_t>(vnode));
}

}  // namespace

HashRing::HashRing(std::vector<std::string> peers, int vnodes) : peers_(std::move(peers)) {
  if (peers_.empty()) throw std::invalid_argument("hash ring needs at least one peer");
  std::unordered_set<std::string> seen;
  for (const std::string& peer : peers_) {
    if (!seen.insert(peer).second) {
      throw std::invalid_argument("duplicate peer in hash ring: " + peer);
    }
  }
  vnodes = std::max(vnodes, 1);
  ring_.reserve(peers_.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    for (int v = 0; v < vnodes; ++v) ring_.emplace_back(point_of(peers_[i], v), i);
  }
  // Sort by point; break the (astronomically unlikely) point collision by
  // peer index so construction order never changes placement.
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::owner_index(std::uint64_t hash) const {
  // Rehash the key before walking the ring: handle fingerprints are already
  // well-mixed, but inline callers may pass anything.
  const std::uint64_t point = graph::mix64(hash);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, std::size_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap: the ring is a circle
  return it->second;
}

std::vector<std::size_t> HashRing::preference(std::uint64_t hash) const {
  const std::uint64_t point = graph::mix64(hash);
  auto start = std::lower_bound(ring_.begin(), ring_.end(),
                                std::make_pair(point, std::size_t{0}));
  if (start == ring_.end()) start = ring_.begin();
  std::vector<std::size_t> order;
  order.reserve(peers_.size());
  std::vector<bool> taken(peers_.size(), false);
  for (std::size_t step = 0; step < ring_.size() && order.size() < peers_.size(); ++step) {
    auto it = start + static_cast<std::ptrdiff_t>(step);
    if (it >= ring_.end()) it -= static_cast<std::ptrdiff_t>(ring_.size());
    if (!taken[it->second]) {
      taken[it->second] = true;
      order.push_back(it->second);
    }
  }
  return order;
}

}  // namespace lmds::cluster
