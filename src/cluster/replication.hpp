#pragma once
// Peer replication payloads for the cluster subsystem (docs/CLUSTER.md): the
// pure build/apply halves of the replicate_out / replicate_in verbs. The
// verbs themselves live in server::Session (src/server/session.cpp) so they
// get the protocol's uniform error handling; this header keeps the payload
// format in one place, decoupled from any transport.
//
// Payload shape (the braceless members of a replicate_in request, or of a
// replicate_out response when pulling):
//
//   "graphs":[{"n":..,"edges":[[u,v],...]}, ...],   // every stored graph
//   "cache":"<base64 of a ResponseCache snapshot>",  // may be ""
//   "graph_count":N                                  // len of "graphs"
//
// Handles are content-addressed, so the graphs ship as plain edge lists and
// every receiver derives the identical handles — there is nothing to map.
// Receiving graphs are installed *unpinned* (GraphStore::put_replica): they
// are resolvable and warm, but evictable and owned by nobody, so a replica
// push can never pin a peer's capacity hostage. They are charged to the
// default namespace (replication is an operator action, not tenant traffic).
// Cache entries merge insert-if-absent without evicting the receiver's own
// entries and without touching its hit/miss counters
// (ResponseCache::merge). Patch lineage is intentionally NOT replicated: a
// solve on a replicated derived handle runs as a full solve on the peer —
// correct, just not incremental — while the merged cache snapshot still
// answers repeated solves warm.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "api/cache.hpp"
#include "api/graph_store.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"

namespace lmds::cluster {

/// Standard base64 (RFC 4648, with '=' padding). The cache snapshot is
/// binary and the wire is JSON text, so it rides in a string member.
std::string base64_encode(std::string_view bytes);

/// Inverse of base64_encode; std::nullopt on any character outside the
/// alphabet, bad padding, or a length that is not a multiple of 4.
std::optional<std::string> base64_decode(std::string_view text);

/// Builds the payload members (no surrounding braces) from a server's live
/// store + cache. Thread-safe: both structures are snapshotted under their
/// own locks.
std::string encode_replication_members(const api::GraphStore& store,
                                       const api::ResponseCache& cache);

/// What apply_replication did, echoed to the sender.
struct ReplicationResult {
  std::size_t installed = 0;  ///< graphs newly stored
  std::size_t present = 0;    ///< graphs already held (content-addressed)
  std::size_t rejected = 0;   ///< graphs refused (store full / quota) — the
                              ///< rest of the payload still applies
  bool cache_merged = false;  ///< a non-empty cache snapshot was merged
};

/// Applies a parsed replicate_in request to the receiver's store + cache.
/// Graph installs are best-effort (a full store rejects, it does not abort);
/// a malformed graph or a corrupt/undecodable cache snapshot throws
/// ProtocolError(BadRequest) — graphs installed before the throw stay
/// installed (they are valid data; replication is idempotent anyway).
ReplicationResult apply_replication(const server::JsonValue& root,
                                    api::GraphStore& store, api::ResponseCache& cache,
                                    const server::ServerLimits& limits);

}  // namespace lmds::cluster
