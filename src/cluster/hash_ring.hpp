#pragma once
// Consistent-hash ring over cluster peers. Graph handles ARE 64-bit content
// fingerprints, so placement needs no table: every router (and every test)
// derives the same owner for the same graph, and adding a peer moves only
// ~1/N of the keyspace. Virtual nodes smooth the distribution: each peer
// contributes `vnodes` points mix64-derived from its name, and a key is
// owned by the first point clockwise from the key's hash.
//
// The ring is immutable after construction — membership is configuration
// (lmds_serve --peer ...), not gossip — which is what makes it safely
// readable from every connection thread without a lock.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lmds::cluster {

class HashRing {
 public:
  /// `peers` must be non-empty and duplicate-free ("host:port" strings);
  /// throws std::invalid_argument otherwise. vnodes < 1 is clamped to 1.
  explicit HashRing(std::vector<std::string> peers, int vnodes = 64);

  std::size_t size() const { return peers_.size(); }
  const std::vector<std::string>& peers() const { return peers_; }

  /// The peer owning `hash` (index into peers()).
  std::size_t owner_index(std::uint64_t hash) const;
  const std::string& owner(std::uint64_t hash) const { return peers_[owner_index(hash)]; }

  /// All peers in failover preference order for `hash`: the owner first,
  /// then each remaining peer in the order its first point appears clockwise
  /// — the order a busy-aware router tries alternates for work that is not
  /// pinned to the owner's store.
  std::vector<std::size_t> preference(std::uint64_t hash) const;

 private:
  std::vector<std::string> peers_;
  /// (point, peer index), sorted by point.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace lmds::cluster
