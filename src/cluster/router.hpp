#pragma once
// The cluster router/coordinator (lmds_serve --router --peer host:port ...).
// A Router sits behind a normal ServerCore — both transports, limits,
// namespaces and counters all work unchanged — and installs itself as the
// core's dispatch override, intercepting the store-and-solve verbs:
//
//   put_graph    -> decode, fingerprint, forward to the ring owner
//   patch_graph  -> forward to the parent handle's owner; remember where the
//                   derived child lives (its content hash need not land on
//                   the same ring segment as its parent's)
//   drop_graph   -> forward to the handle's owner
//   solve        -> partition the graphs array by owner (handles via the
//                   location map then the ring, inline graphs by their
//                   fingerprint so repeat traffic hits the same warm
//                   worker), fan the sub-batches out concurrently, then
//                   splice the workers' response objects back together IN
//                   SLOT ORDER as raw text — bit-identical to what one
//                   server would emit (re-encoding parsed JSON would reorder
//                   keys). Sub-batch diagnostics merge numerically.
//   stats        -> the local line plus a "router" member (peer count and
//                   per-peer forward counters)
//
// Everything else (solvers, open_session, save/load_cache, replicate_*,
// shutdown) falls through to the local core. Failure policy per sub-batch:
// server_busy retries on the same worker with linear backoff, then — for
// work not pinned to a worker's store (no handles) — fails over around the
// ring; connection errors fail over the same way. Handle-bound sub-batches
// cannot fail over (only the owner holds the graphs) and report the error.
//
// Worker connections are pooled per peer and created on demand, so N
// concurrent client batches fan out over N parallel connections per worker.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/session.hpp"

namespace lmds::cluster {

struct RouterOptions {
  std::vector<std::string> peers;  ///< "host:port" per worker; >= 1 required
  int vnodes = 64;
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 60000;  ///< generous: a worker solve can be slow, a
                              ///< dead worker still fails in finite time
  int busy_retries = 2;       ///< extra same-worker attempts on server_busy
  int backoff_ms = 25;        ///< first backoff; grows linearly per attempt
  std::size_t max_locations = 1u << 20;  ///< bound on the child-handle map
};

/// Splits a worker's {"ok":true,"op":"solve","responses":[...],...} line
/// into the verbatim text of each element of its "responses" array. The
/// views point into `line`. Returns std::nullopt when the line is not a
/// solve success line of that exact shape. Exposed for tests — this scanner
/// is what routed bit-identity rests on.
std::optional<std::vector<std::string_view>> split_raw_responses(std::string_view line);

class Router {
 public:
  /// `core` must outlive the Router. Call install() to take over dispatch.
  Router(RouterOptions opts, server::ServerCore& core);

  /// Registers this router as `core`'s dispatch override. Call before
  /// serving starts (the override is read unsynchronized afterwards).
  void install();

  /// The dispatch override: a response line for intercepted verbs,
  /// std::nullopt to fall through to the local implementation.
  std::optional<std::string> route(server::Session& session, std::string_view verb,
                                   const server::JsonValue& root);

  const HashRing& ring() const { return ring_; }

 private:
  /// One pooled connection, returned to the pool on clean release.
  using ClientPtr = std::unique_ptr<server::ProtocolClient>;

  ClientPtr acquire(std::size_t peer) LMDS_EXCLUDES(pool_mu_);
  void release(std::size_t peer, ClientPtr client) LMDS_EXCLUDES(pool_mu_);
  ClientPtr dial(std::size_t peer) const;

  /// One request line against one peer over a pooled solve connection.
  /// Throws std::runtime_error on connect/IO failure; returns the verbatim
  /// response line (raw text — never reparsed-and-reencoded).
  std::string exchange_pooled(std::size_t peer, const std::string& line)
      LMDS_EXCLUDES(pool_mu_);

  /// Same, over the peer's single long-lived CONTROL connection. put/patch/
  /// drop must all share one worker-side session — pins belong to the
  /// connection that made them, so a drop sent over a different pooled
  /// connection than its put would fail ownership. Serialized by control_mu_
  /// (these verbs are rare next to solves).
  std::string exchange_control(std::size_t peer, const std::string& line)
      LMDS_EXCLUDES(control_mu_);

  /// Full failure policy (busy backoff + optional ring failover) around the
  /// exchanges. `preference` is the peer order to try; `can_fail_over` false
  /// restricts it to the first entry. Returns the first non-busy response,
  /// or an encoded error line when every attempt failed.
  std::string forward(const std::vector<std::size_t>& preference, bool can_fail_over,
                      bool control, const std::string& line);

  std::optional<std::string> route_solve(server::Session& session,
                                         const server::JsonValue& root);
  std::optional<std::string> route_put(const server::JsonValue& root);
  std::optional<std::string> route_patch(server::Session& session,
                                         const server::JsonValue& root);
  std::optional<std::string> route_drop(const server::JsonValue& root);
  std::string route_stats(server::Session& session, const server::JsonValue& root);

  /// Owner lookup for a well-formed handle: the location map (patch-derived
  /// children) first, then the ring over the handle's own fingerprint.
  std::size_t locate_handle(const std::string& handle, std::uint64_t hash)
      LMDS_EXCLUDES(loc_mu_);
  void record_location(const std::string& handle, std::size_t peer) LMDS_EXCLUDES(loc_mu_);

  const RouterOptions opts_;
  server::ServerCore& core_;
  HashRing ring_;

  common::Mutex pool_mu_;
  std::vector<std::vector<ClientPtr>> pool_ LMDS_GUARDED_BY(pool_mu_);  // per peer

  common::Mutex control_mu_;
  std::vector<ClientPtr> control_ LMDS_GUARDED_BY(control_mu_);  // per peer, lazy

  common::Mutex loc_mu_;
  /// Patch-derived child handle -> owning peer index. Bounded by
  /// opts_.max_locations (oldest-insertion arbitrary eviction — a miss just
  /// means the ring answers, and for a child that can be unknown_handle,
  /// the same answer an over-capacity single server would give).
  std::unordered_map<std::string, std::size_t> locations_ LMDS_GUARDED_BY(loc_mu_);

  /// Forward counters per peer, surfaced by route_stats.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> forwards_;
};

}  // namespace lmds::cluster
