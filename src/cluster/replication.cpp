#include "cluster/replication.hpp"

#include <array>
#include <sstream>

namespace lmds::cluster {

namespace {

constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<signed char, 256> build_reverse() {
  std::array<signed char, 256> rev{};
  for (auto& v : rev) v = -1;
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[static_cast<std::size_t>(i)])] =
        static_cast<signed char>(i);
  }
  return rev;
}

constexpr std::array<signed char, 256> kReverse = build_reverse();

}  // namespace

std::string base64_encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= bytes.size()) {
    const unsigned v = (static_cast<unsigned char>(bytes[i]) << 16) |
                       (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                       static_cast<unsigned char>(bytes[i + 2]);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += kAlphabet[v & 63];
    i += 3;
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const unsigned v = static_cast<unsigned char>(bytes[i]) << 16;
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const unsigned v = (static_cast<unsigned char>(bytes[i]) << 16) |
                       (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += '=';
  }
  return out;
}

std::optional<std::string> base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    unsigned v = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after '='
      const signed char d = kReverse[static_cast<unsigned char>(c)];
      if (d < 0) return std::nullopt;
      v = (v << 6) | static_cast<unsigned>(d);
    }
    out += static_cast<char>((v >> 16) & 0xFF);
    if (pad < 2) out += static_cast<char>((v >> 8) & 0xFF);
    if (pad < 1) out += static_cast<char>(v & 0xFF);
  }
  return out;
}

std::string encode_replication_members(const api::GraphStore& store,
                                       const api::ResponseCache& cache) {
  const auto graphs = store.snapshot_graphs();
  std::string out = "\"graphs\":[";
  bool first = true;
  for (const auto& [handle, graph] : graphs) {
    if (!first) out += ',';
    first = false;
    out += server::encode_graph_json(*graph);
  }
  out += "],\"cache\":\"";
  if (cache.enabled()) {
    std::ostringstream snapshot;
    cache.serialize(snapshot);
    out += base64_encode(snapshot.str());  // base64 needs no JSON escaping
  }
  out += "\",\"graph_count\":" + std::to_string(graphs.size());
  return out;
}

ReplicationResult apply_replication(const server::JsonValue& root,
                                    api::GraphStore& store, api::ResponseCache& cache,
                                    const server::ServerLimits& limits) {
  ReplicationResult result;
  if (const server::JsonValue* graphs = root.find("graphs")) {
    if (graphs->type() != server::JsonValue::Type::Array) {
      throw server::ProtocolError(server::ErrorCode::BadRequest,
                                  "replicate \"graphs\" must be an array");
    }
    for (const server::JsonValue& g : graphs->as_array()) {
      graph::Graph decoded = server::decode_graph(g, limits);  // throws BadRequest
      try {
        if (store.put_replica(std::move(decoded)).inserted) {
          ++result.installed;
        } else {
          ++result.present;
        }
      } catch (const api::GraphStoreFull&) {
        // Best-effort: the receiver is full (or quota'd); skip, keep going —
        // replication must never wedge a healthy peer.
        ++result.rejected;
      }
    }
  }
  if (const server::JsonValue* encoded = root.find("cache")) {
    if (encoded->type() != server::JsonValue::Type::String) {
      throw server::ProtocolError(server::ErrorCode::BadRequest,
                                  "replicate \"cache\" must be a base64 string");
    }
    if (!encoded->as_string().empty()) {
      const auto bytes = base64_decode(encoded->as_string());
      if (!bytes) {
        throw server::ProtocolError(server::ErrorCode::BadRequest,
                                    "replicate \"cache\" is not valid base64");
      }
      std::istringstream snapshot(*bytes);
      try {
        cache.merge(snapshot);
      } catch (const std::exception& e) {
        throw server::ProtocolError(server::ErrorCode::BadRequest,
                                    std::string("replicate cache snapshot: ") + e.what());
      }
      result.cache_merged = true;
    }
  }
  return result;
}

}  // namespace lmds::cluster
