#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/graph_store.hpp"
#include "graph/hash.hpp"
#include "server/protocol.hpp"

namespace lmds::cluster {

namespace {

using server::ErrorCode;
using server::JsonValue;

/// Splits "host:port" or throws std::invalid_argument.
std::pair<std::string, int> parse_peer(const std::string& peer) {
  const std::size_t colon = peer.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == peer.size()) {
    throw std::invalid_argument("peer must be host:port, got \"" + peer + "\"");
  }
  int port = 0;
  for (std::size_t i = colon + 1; i < peer.size(); ++i) {
    const char c = peer[i];
    if (c < '0' || c > '9' || (port = port * 10 + (c - '0')) > 65535) {
      throw std::invalid_argument("bad port in peer \"" + peer + "\"");
    }
  }
  return {peer.substr(0, colon), port};
}

/// True when `line` parses as an {"ok":false,...} response with the given
/// code. An unparseable line is not busy — it is a failure the caller wraps.
bool is_busy_line(const std::string& line) {
  try {
    const JsonValue parsed = server::json_parse(line);
    const JsonValue* ok = parsed.find("ok");
    if (!ok || ok->type() != JsonValue::Type::Bool || ok->as_bool()) return false;
    const JsonValue* code = parsed.find("code");
    return code && code->type() == JsonValue::Type::String &&
           code->as_string() == to_string(ErrorCode::ServerBusy);
  } catch (const server::JsonError&) {
    return false;
  }
}

std::uint64_t diag_counter(const JsonValue& diag, const char* name) {
  const JsonValue* v = diag.find(name);
  if (!v || v->type() != JsonValue::Type::Int) return 0;
  const std::int64_t n = v->as_int();
  return n > 0 ? static_cast<std::uint64_t>(n) : 0;
}

/// Folds one worker sub-response's "diag" object into the routed batch's
/// merged diagnostics: concurrency highs are maxed, work counters summed.
void merge_diag(api::BatchDiagnostics& out, const JsonValue& response) {
  const JsonValue* diag = response.find("diag");
  if (!diag || diag->type() != JsonValue::Type::Object) return;
  out.threads = std::max<int>(out.threads, static_cast<int>(diag_counter(*diag, "threads")));
  out.intra_threads =
      std::max<int>(out.intra_threads, static_cast<int>(diag_counter(*diag, "intra_threads")));
  out.shards += static_cast<int>(diag_counter(*diag, "shards"));
  out.stolen_shards += diag_counter(*diag, "stolen_shards");
  out.cache_hits += diag_counter(*diag, "cache_hits");
  out.cache_misses += diag_counter(*diag, "cache_misses");
  out.cache_evictions += diag_counter(*diag, "cache_evictions");
  out.incremental_solves += diag_counter(*diag, "incremental_solves");
  out.incremental_fallbacks += diag_counter(*diag, "incremental_fallbacks");
  out.incremental_dirty += diag_counter(*diag, "incremental_dirty");
}

/// One sub-batch: the slots of the client batch owned by one peer.
struct SubBatch {
  std::size_t peer = 0;
  std::vector<std::size_t> slots;
  std::uint64_t rep_hash = 0;  ///< first slot's fingerprint (failover order)
  bool has_handle = false;     ///< store-bound: cannot fail over
  std::string line;            ///< the sub-request line
};

}  // namespace

std::optional<std::vector<std::string_view>> split_raw_responses(std::string_view line) {
  constexpr std::string_view kPrefix = "{\"ok\":true,\"op\":\"solve\",\"responses\":[";
  if (!line.starts_with(kPrefix)) return std::nullopt;
  std::vector<std::string_view> out;
  std::size_t i = kPrefix.size();
  if (i < line.size() && line[i] == ']') return out;  // empty batch
  while (i < line.size()) {
    // One array element: scan to its end with string- and escape-aware
    // depth tracking ('[' ']' '{' '}' inside JSON strings must not count).
    const std::size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') {
          ++i;  // skip the escaped character (also keeps \" from closing)
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // the array's own closing ']'
        --depth;
      } else if (c == ',' && depth == 0) {
        break;  // between elements
      }
    }
    if (i >= line.size() || depth != 0 || in_string) return std::nullopt;
    out.push_back(line.substr(start, i - start));
    if (line[i] == ']') return out;  // done; tail (diag etc.) follows
    ++i;                             // past the ','
  }
  return std::nullopt;  // ran off the end without the closing ']'
}

Router::Router(RouterOptions opts, server::ServerCore& core)
    : opts_(std::move(opts)),
      core_(core),
      ring_(opts_.peers, opts_.vnodes),
      pool_(opts_.peers.size()),
      control_(opts_.peers.size()) {
  for (const std::string& peer : opts_.peers) (void)parse_peer(peer);  // validate early
  forwards_.reserve(opts_.peers.size());
  for (std::size_t i = 0; i < opts_.peers.size(); ++i) {
    forwards_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

void Router::install() {
  core_.set_dispatch_override(
      [this](server::Session& session, std::string_view verb, const JsonValue& root) {
        return route(session, verb, root);
      });
}

Router::ClientPtr Router::dial(std::size_t peer) const {
  const auto [host, port] = parse_peer(opts_.peers[peer]);
  // Line protocol, default namespace: solve sub-requests carry their
  // namespace explicitly, and reconnect stays off — the router owns retry
  // and failover itself (a blind replay could double-apply).
  return std::make_unique<server::ProtocolClient>(
      host, port, /*http=*/false, /*ns=*/"",
      server::ClientOptions{.connect_timeout_ms = opts_.connect_timeout_ms,
                            .io_timeout_ms = opts_.io_timeout_ms});
}

Router::ClientPtr Router::acquire(std::size_t peer) {
  {
    common::MutexLock lock(pool_mu_);
    if (!pool_[peer].empty()) {
      ClientPtr client = std::move(pool_[peer].back());
      pool_[peer].pop_back();
      return client;
    }
  }
  return dial(peer);  // connect outside the lock
}

void Router::release(std::size_t peer, ClientPtr client) {
  common::MutexLock lock(pool_mu_);
  pool_[peer].push_back(std::move(client));
}

std::string Router::exchange_pooled(std::size_t peer, const std::string& line) {
  ClientPtr client = acquire(peer);
  forwards_[peer]->fetch_add(1, std::memory_order_relaxed);
  // An error path drops the client (its stream state is unknown); only a
  // clean round trip returns the connection to the pool.
  if (!client->send_raw(line + "\n")) {
    throw std::runtime_error("peer " + opts_.peers[peer] + " closed the connection");
  }
  std::optional<std::string> response = client->read_raw_line();
  if (!response) {
    throw std::runtime_error("peer " + opts_.peers[peer] +
                             " closed the connection before responding");
  }
  release(peer, std::move(client));
  return *std::move(response);
}

std::string Router::exchange_control(std::size_t peer, const std::string& line) {
  common::MutexLock lock(control_mu_);
  if (!control_[peer]) control_[peer] = dial(peer);
  forwards_[peer]->fetch_add(1, std::memory_order_relaxed);
  // A failed control connection resets to null so the next verb re-dials —
  // which starts a fresh worker-side session, releasing the old one's pins
  // (the graphs stay in the store, unpinned).
  if (!control_[peer]->send_raw(line + "\n")) {
    control_[peer].reset();
    throw std::runtime_error("peer " + opts_.peers[peer] + " closed the control connection");
  }
  std::optional<std::string> response = control_[peer]->read_raw_line();
  if (!response) {
    control_[peer].reset();
    throw std::runtime_error("peer " + opts_.peers[peer] +
                             " closed the control connection before responding");
  }
  return *std::move(response);
}

std::string Router::forward(const std::vector<std::size_t>& preference, bool can_fail_over,
                            bool control, const std::string& line) {
  const std::size_t tries = can_fail_over ? preference.size() : 1;
  std::string last_busy;
  std::string last_error;
  for (std::size_t p = 0; p < tries; ++p) {
    const std::size_t peer = preference[p];
    for (int attempt = 0; attempt <= opts_.busy_retries; ++attempt) {
      if (attempt > 0) {
        // Linear backoff: busy means admission control said no, and
        // hammering an over-quota namespace just burns the quota window.
        std::this_thread::sleep_for(std::chrono::milliseconds(opts_.backoff_ms * attempt));
      }
      std::string response;
      try {
        response = control ? exchange_control(peer, line) : exchange_pooled(peer, line);
      } catch (const std::exception& e) {
        last_error = e.what();
        break;  // connection trouble: next peer (or give up)
      }
      if (!is_busy_line(response)) return response;
      last_busy = std::move(response);
    }
  }
  // Busy everywhere beats a connection error: the client should retry, not
  // conclude the cluster is down.
  if (!last_busy.empty()) return last_busy;
  return server::encode_error(ErrorCode::IoError, "no cluster peer answered: " + last_error);
}

std::optional<std::string> Router::route(server::Session& session, std::string_view verb,
                                         const JsonValue& root) {
  if (root.type() != JsonValue::Type::Object) return std::nullopt;
  if (verb == "solve") return route_solve(session, root);
  if (verb == "put_graph") return route_put(root);
  if (verb == "patch_graph") return route_patch(session, root);
  if (verb == "drop_graph") return route_drop(root);
  if (verb == "stats") return route_stats(session, root);
  return std::nullopt;  // solvers/open_session/replicate_*/... stay local
}

std::size_t Router::locate_handle(const std::string& handle, std::uint64_t hash) {
  {
    common::MutexLock lock(loc_mu_);
    const auto it = locations_.find(handle);
    if (it != locations_.end()) return it->second;
  }
  return ring_.owner_index(hash);
}

void Router::record_location(const std::string& handle, std::size_t peer) {
  common::MutexLock lock(loc_mu_);
  if (locations_.size() >= opts_.max_locations && !locations_.contains(handle)) {
    // Arbitrary eviction keeps the map bounded; a dropped entry only costs
    // a ring-directed lookup that may answer unknown_handle — exactly what
    // an over-capacity single server answers.
    locations_.erase(locations_.begin());
  }
  locations_.insert_or_assign(handle, peer);
}

std::optional<std::string> Router::route_solve(server::Session& session,
                                               const JsonValue& root) {
  const server::ServerLimits& limits = core_.options().limits;
  const JsonValue* graphs = root.find("graphs");
  if (!graphs || graphs->type() != JsonValue::Type::Array || graphs->as_array().empty()) {
    return std::nullopt;  // local dispatch produces the right bad_request
  }
  const JsonValue* ns_member = root.find("namespace");
  if (ns_member && ns_member->type() != JsonValue::Type::String) return std::nullopt;
  const std::string ns = ns_member ? ns_member->as_string() : session.ns();

  // Partition the slots by owning peer. Any shape trouble — a malformed
  // handle, an undecodable inline graph — falls through to local dispatch,
  // which produces the exact error line a single server would.
  const JsonValue::Array& slots = graphs->as_array();
  std::vector<SubBatch> subs;
  std::vector<std::size_t> sub_of_peer(ring_.size(), SIZE_MAX);
  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    std::uint64_t hash = 0;
    bool is_handle = false;
    if (slots[slot].type() == JsonValue::Type::String) {
      const std::optional<std::uint64_t> parsed =
          api::GraphStore::parse_handle(slots[slot].as_string());
      if (!parsed) return std::nullopt;
      hash = *parsed;
      is_handle = true;
    } else if (slots[slot].type() == JsonValue::Type::Object) {
      try {
        // Decoding here is not wasted work: the fingerprint IS the routing
        // key, and it is what gives repeated inline graphs cache affinity
        // (the same graph always lands on the same warm worker).
        hash = graph::graph_hash(server::decode_graph(slots[slot], limits));
      } catch (const server::ProtocolError&) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    const std::size_t peer =
        is_handle ? locate_handle(slots[slot].as_string(), hash) : ring_.owner_index(hash);
    if (sub_of_peer[peer] == SIZE_MAX) {
      sub_of_peer[peer] = subs.size();
      SubBatch sub;
      sub.peer = peer;
      sub.rep_hash = hash;
      subs.push_back(std::move(sub));
    }
    SubBatch& sub = subs[sub_of_peer[peer]];
    sub.slots.push_back(slot);
    sub.has_handle = sub.has_handle || is_handle;
  }

  // Build each peer's sub-request: the client's request verbatim (solver,
  // options, measure flags, batch overrides all ride along — json_dump
  // canonicalizes, which is fine for REQUESTS; workers parse them) with the
  // graphs array cut down to the peer's slots and the namespace pinned
  // explicitly (pooled connections are namespace-less).
  for (SubBatch& sub : subs) {
    JsonValue::Object obj = root.type() == JsonValue::Type::Object ? root.as_object()
                                                                   : JsonValue::Object{};
    obj.insert_or_assign("op", JsonValue(std::string("solve")));
    JsonValue::Array mine;
    mine.reserve(sub.slots.size());
    for (const std::size_t slot : sub.slots) mine.push_back(slots[slot]);
    obj.insert_or_assign("graphs", JsonValue(std::move(mine)));
    if (!ns.empty()) {
      obj.insert_or_assign("namespace", JsonValue(ns));
    } else {
      obj.erase("namespace");
    }
    sub.line = server::json_dump(JsonValue(std::move(obj)));
  }

  // Fan out: thread-per-peer (bounded by the ring size), each sub-batch
  // running the full retry/failover policy independently. Store-bound
  // sub-batches cannot fail over — only the owner holds their graphs.
  std::vector<std::string> raw(subs.size());
  const auto run_one = [&](std::size_t i) {
    const SubBatch& sub = subs[i];
    const std::vector<std::size_t> preference =
        sub.has_handle ? std::vector<std::size_t>{sub.peer} : ring_.preference(sub.rep_hash);
    raw[i] = forward(preference, /*can_fail_over=*/!sub.has_handle, /*control=*/false,
                     sub.line);
  };
  if (subs.size() == 1) {
    run_one(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(subs.size());
    for (std::size_t i = 0; i < subs.size(); ++i) threads.emplace_back(run_one, i);
    for (std::thread& t : threads) t.join();
  }

  // Any failed sub-batch fails the whole request — the same all-or-nothing
  // contract a single server gives a batch. Report the failure owning the
  // EARLIEST slot, the one a single server would have hit first.
  std::vector<std::string_view> ordered(slots.size());
  api::BatchDiagnostics diag;
  diag.threads = 0;  // maxed from sub-responses below
  std::size_t error_sub = SIZE_MAX;
  std::size_t error_slot = slots.size();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const std::optional<std::vector<std::string_view>> pieces = split_raw_responses(raw[i]);
    if (!pieces || pieces->size() != subs[i].slots.size()) {
      if (subs[i].slots.front() < error_slot) {
        error_slot = subs[i].slots.front();
        error_sub = i;
      }
      continue;
    }
    for (std::size_t j = 0; j < pieces->size(); ++j) ordered[subs[i].slots[j]] = (*pieces)[j];
    try {
      merge_diag(diag, server::json_parse(raw[i]));
    } catch (const server::JsonError&) {
      // split_raw_responses accepted it, so this cannot happen; a diag-less
      // merge is still a complete answer.
    }
  }
  if (error_sub != SIZE_MAX) {
    const std::string& line = raw[error_sub];
    try {
      const JsonValue parsed = server::json_parse(line);
      const JsonValue* ok = parsed.find("ok");
      if (ok && ok->type() == JsonValue::Type::Bool && !ok->as_bool()) {
        return line;  // a well-formed worker error line passes through verbatim
      }
    } catch (const server::JsonError&) {
    }
    return server::encode_error(
        ErrorCode::IoError, "peer " + opts_.peers[subs[error_sub].peer] +
                                " returned an unusable solve response for this batch");
  }
  if (diag.threads == 0) diag.threads = 1;
  core_.count_graphs(slots.size());
  return server::encode_solve_result_raw(ordered, diag, ns);
}

std::optional<std::string> Router::route_put(const JsonValue& root) {
  const JsonValue* graph_member = root.find("graph");
  if (!graph_member) return std::nullopt;
  std::uint64_t hash = 0;
  try {
    hash = graph::graph_hash(server::decode_graph(*graph_member, core_.options().limits));
  } catch (const server::ProtocolError&) {
    return std::nullopt;  // local dispatch reports the malformed graph
  }
  JsonValue::Object obj = root.as_object();
  obj.insert_or_assign("op", JsonValue(std::string("put_graph")));
  // Content-addressed placement: the handle the worker will mint IS this
  // fingerprint, so no put location needs remembering — the ring re-derives
  // the owner from any future handle. No failover: a graph stored on a
  // non-owner would be unreachable to routing.
  const std::size_t peer = ring_.owner_index(hash);
  return forward({peer}, /*can_fail_over=*/false, /*control=*/true,
                 server::json_dump(JsonValue(std::move(obj))));
}

std::optional<std::string> Router::route_patch(server::Session& session,
                                               const JsonValue& root) {
  (void)session;
  const JsonValue* handle = root.find("handle");
  if (!handle || handle->type() != JsonValue::Type::String) return std::nullopt;
  const std::optional<std::uint64_t> hash = api::GraphStore::parse_handle(handle->as_string());
  if (!hash) return std::nullopt;
  JsonValue::Object obj = root.as_object();
  obj.insert_or_assign("op", JsonValue(std::string("patch_graph")));
  // The PARENT's owner applies the patch (it holds the adjacency the child
  // structurally shares). The child's content hash need not land on the same
  // ring segment, so its true location goes into the location map.
  const std::size_t peer = locate_handle(handle->as_string(), *hash);
  const std::string response =
      forward({peer}, /*can_fail_over=*/false, /*control=*/true,
              server::json_dump(JsonValue(std::move(obj))));
  try {
    const JsonValue parsed = server::json_parse(response);
    const JsonValue* ok = parsed.find("ok");
    const JsonValue* child = parsed.find("handle");
    if (ok && ok->type() == JsonValue::Type::Bool && ok->as_bool() && child &&
        child->type() == JsonValue::Type::String) {
      record_location(child->as_string(), peer);
    }
  } catch (const server::JsonError&) {
  }
  return response;
}

std::optional<std::string> Router::route_drop(const JsonValue& root) {
  const JsonValue* handle = root.find("handle");
  if (!handle || handle->type() != JsonValue::Type::String) return std::nullopt;
  const std::optional<std::uint64_t> hash = api::GraphStore::parse_handle(handle->as_string());
  if (!hash) return std::nullopt;
  JsonValue::Object obj = root.as_object();
  obj.insert_or_assign("op", JsonValue(std::string("drop_graph")));
  const std::size_t peer = locate_handle(handle->as_string(), *hash);
  const std::string response =
      forward({peer}, /*can_fail_over=*/false, /*control=*/true,
              server::json_dump(JsonValue(std::move(obj))));
  {
    // Whatever the outcome, the location entry is stale or useless now.
    common::MutexLock lock(loc_mu_);
    locations_.erase(handle->as_string());
  }
  return response;
}

std::string Router::route_stats(server::Session& session, const JsonValue& root) {
  std::string line = session.dispatch_local("stats", root);
  if (!line.ends_with('}')) return line;  // error line: pass through
  // Splice a "router" member before the closing brace — additive, so every
  // existing stats consumer keeps parsing.
  std::string extra = ",\"router\":{\"peers\":" + std::to_string(ring_.size()) +
                      ",\"forwards\":{";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (i) extra += ',';
    server::json_append_string(extra, ring_.peers()[i]);
    extra += ':' + std::to_string(forwards_[i]->load(std::memory_order_relaxed));
  }
  extra += "}}";
  line.insert(line.size() - 1, extra);
  return line;
}

}  // namespace lmds::cluster
