#include "cuts/block_cut.hpp"

#include <algorithm>
#include <stack>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace lmds::cuts {

namespace {

// Iterative Tarjan lowpoint DFS producing articulation flags and biconnected
// components (as vertex sets, via an edge stack).
struct TarjanResult {
  std::vector<char> is_articulation;
  std::vector<std::vector<Vertex>> blocks;
};

TarjanResult tarjan(const Graph& g) {
  const int n = g.num_vertices();
  TarjanResult result;
  result.is_articulation.assign(static_cast<std::size_t>(n), 0);

  std::vector<int> disc(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> parent(static_cast<std::size_t>(n), graph::kNoVertex);
  std::vector<std::size_t> next_child(static_cast<std::size_t>(n), 0);
  std::vector<graph::Edge> edge_stack;
  int timer = 0;

  for (Vertex root = 0; root < n; ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    if (g.degree(root) == 0) {
      // Isolated vertex: its own trivial block.
      result.blocks.push_back({root});
      disc[static_cast<std::size_t>(root)] = timer++;
      continue;
    }
    int root_children = 0;
    std::stack<Vertex> stack;
    stack.push(root);
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = timer++;
    while (!stack.empty()) {
      const Vertex u = stack.top();
      const auto nb = g.neighbors(u);
      if (next_child[static_cast<std::size_t>(u)] < nb.size()) {
        const Vertex w = nb[next_child[static_cast<std::size_t>(u)]++];
        if (disc[static_cast<std::size_t>(w)] == -1) {
          parent[static_cast<std::size_t>(w)] = u;
          edge_stack.push_back({u, w});
          disc[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] = timer++;
          stack.push(w);
          if (u == root) ++root_children;
        } else if (w != parent[static_cast<std::size_t>(u)] &&
                   disc[static_cast<std::size_t>(w)] < disc[static_cast<std::size_t>(u)]) {
          edge_stack.push_back({u, w});
          low[static_cast<std::size_t>(u)] =
              std::min(low[static_cast<std::size_t>(u)], disc[static_cast<std::size_t>(w)]);
        }
      } else {
        stack.pop();
        if (stack.empty()) break;
        const Vertex p = stack.top();
        low[static_cast<std::size_t>(p)] =
            std::min(low[static_cast<std::size_t>(p)], low[static_cast<std::size_t>(u)]);
        if (low[static_cast<std::size_t>(u)] >= disc[static_cast<std::size_t>(p)]) {
          // p closes a biconnected component: pop edges up to and incl. (p,u).
          if (p != root || root_children >= 1) {
            // Articulation decision handled below; always emit the block.
          }
          std::vector<Vertex> block_vertices;
          while (!edge_stack.empty()) {
            const graph::Edge e = edge_stack.back();
            edge_stack.pop_back();
            block_vertices.push_back(e.u);
            block_vertices.push_back(e.v);
            if ((e.u == p && e.v == u) || (e.u == u && e.v == p)) break;
          }
          std::sort(block_vertices.begin(), block_vertices.end());
          block_vertices.erase(std::unique(block_vertices.begin(), block_vertices.end()),
                               block_vertices.end());
          result.blocks.push_back(std::move(block_vertices));
          if (p != root) result.is_articulation[static_cast<std::size_t>(p)] = 1;
        }
      }
    }
    if (root_children >= 2) result.is_articulation[static_cast<std::size_t>(root)] = 1;
  }
  return result;
}

}  // namespace

std::vector<Vertex> articulation_points(const Graph& g) {
  const TarjanResult t = tarjan(g);
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (t.is_articulation[static_cast<std::size_t>(v)]) result.push_back(v);
  }
  return result;
}

bool is_cut_vertex(const Graph& g, Vertex v) {
  const int before = graph::connected_components(g).count;
  const Vertex removed[] = {v};
  const int after = graph::components_without(g, removed).count;
  return after > before;
}

int BlockCutTree::cut_index(Vertex v) const {
  const auto it = std::lower_bound(cut_vertices.begin(), cut_vertices.end(), v);
  if (it == cut_vertices.end() || *it != v) return -1;
  return static_cast<int>(it - cut_vertices.begin());
}

std::vector<int> BlockCutTree::blocks_of(Vertex v) const {
  std::vector<int> result;
  for (int b = 0; b < num_blocks(); ++b) {
    if (std::binary_search(blocks[static_cast<std::size_t>(b)].begin(),
                           blocks[static_cast<std::size_t>(b)].end(), v)) {
      result.push_back(b);
    }
  }
  return result;
}

BlockCutTree block_cut_tree(const Graph& g) {
  const TarjanResult t = tarjan(g);
  BlockCutTree result;
  result.blocks = t.blocks;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (t.is_articulation[static_cast<std::size_t>(v)]) result.cut_vertices.push_back(v);
  }
  graph::GraphBuilder builder(result.num_blocks() + result.num_cut_vertices());
  for (int b = 0; b < result.num_blocks(); ++b) {
    for (Vertex v : result.blocks[static_cast<std::size_t>(b)]) {
      const int j = result.cut_index(v);
      if (j != -1) builder.add_edge(static_cast<Vertex>(b), result.cut_node(j));
    }
  }
  result.tree = builder.build();
  return result;
}

}  // namespace lmds::cuts
