#include "cuts/two_cuts.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace lmds::cuts {

int full_component_count(const Graph& g, Vertex u, Vertex v) {
  if (u == v || !g.has_vertex(u) || !g.has_vertex(v)) return 0;
  const Vertex removed[] = {u, v};
  const auto comps = graph::components_without(g, removed);
  if (comps.count == 0) return 0;
  std::vector<char> touches_u(static_cast<std::size_t>(comps.count), 0);
  std::vector<char> touches_v(static_cast<std::size_t>(comps.count), 0);
  for (Vertex w : g.neighbors(u)) {
    const int c = comps.component[static_cast<std::size_t>(w)];
    if (c >= 0) touches_u[static_cast<std::size_t>(c)] = 1;
  }
  for (Vertex w : g.neighbors(v)) {
    const int c = comps.component[static_cast<std::size_t>(w)];
    if (c >= 0) touches_v[static_cast<std::size_t>(c)] = 1;
  }
  int full = 0;
  for (int c = 0; c < comps.count; ++c) {
    if (touches_u[static_cast<std::size_t>(c)] && touches_v[static_cast<std::size_t>(c)]) ++full;
  }
  return full;
}

bool is_minimal_two_cut(const Graph& g, Vertex u, Vertex v) {
  return full_component_count(g, u, v) >= 2;
}

std::vector<VertexPair> minimal_two_cuts(const Graph& g) {
  std::vector<VertexPair> result;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v = u + 1; v < g.num_vertices(); ++v) {
      if (is_minimal_two_cut(g, u, v)) result.push_back({u, v});
    }
  }
  return result;
}

std::vector<Vertex> vertices_in_minimal_two_cuts(const Graph& g) {
  std::vector<char> in(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const VertexPair p : minimal_two_cuts(g)) {
    in[static_cast<std::size_t>(p.u)] = 1;
    in[static_cast<std::size_t>(p.v)] = 1;
  }
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (in[static_cast<std::size_t>(v)]) result.push_back(v);
  }
  return result;
}

}  // namespace lmds::cuts
