#pragma once
// Minimal 2-cuts (2-separators).
//
// Convention (DESIGN.md §4): {u, v} is a *minimal* 2-cut iff at least two
// connected components of G − {u, v} are adjacent to both u and v ("full"
// components). This matches the standard minimal-separator notion and every
// use in the paper: no proper subset separates the same components, and in a
// 2-connected graph it coincides with "removal disconnects".

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace lmds::cuts {

using graph::Graph;
using graph::Vertex;

/// Unordered vertex pair with u < v.
struct VertexPair {
  Vertex u = graph::kNoVertex;
  Vertex v = graph::kNoVertex;

  friend bool operator==(const VertexPair&, const VertexPair&) = default;
  friend auto operator<=>(const VertexPair&, const VertexPair&) = default;
};

/// Normalises an unordered pair.
inline VertexPair make_pair_sorted(Vertex a, Vertex b) {
  return a < b ? VertexPair{a, b} : VertexPair{b, a};
}

/// True iff {u, v} is a minimal 2-cut of g (>= 2 full components).
bool is_minimal_two_cut(const Graph& g, Vertex u, Vertex v);

/// Number of connected components of G − {u, v} adjacent to both u and v.
int full_component_count(const Graph& g, Vertex u, Vertex v);

/// All minimal 2-cuts of g, brute force over pairs. O(n^2 (n + m)) —
/// intended for ball graphs and test instances.
std::vector<VertexPair> minimal_two_cuts(const Graph& g);

/// All vertices appearing in some minimal 2-cut of g.
std::vector<Vertex> vertices_in_minimal_two_cuts(const Graph& g);

}  // namespace lmds::cuts
