#include "cuts/local_cuts.hpp"

#include <algorithm>
#include <stdexcept>

#include "cuts/block_cut.hpp"
#include "graph/bfs.hpp"
#include "graph/ops.hpp"

namespace lmds::cuts {

namespace {

void require_radius(int r) {
  if (r < 1) throw std::invalid_argument("local cuts: radius must be >= 1");
}

}  // namespace

bool is_local_one_cut(const Graph& g, Vertex v, int r) {
  require_radius(r);
  if (!g.has_vertex(v)) throw std::invalid_argument("is_local_one_cut: bad vertex");
  const auto ball_vertices = graph::ball(g, v, r);
  const auto sub = graph::induced_subgraph(g, ball_vertices);
  return is_cut_vertex(sub.graph, sub.from_parent[static_cast<std::size_t>(v)]);
}

std::vector<Vertex> local_one_cuts(const Graph& g, int r) {
  require_radius(r);
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (is_local_one_cut(g, v, r)) result.push_back(v);
  }
  return result;
}

bool is_local_two_cut(const Graph& g, Vertex u, Vertex v, int r) {
  require_radius(r);
  if (u == v) return false;
  if (!g.has_vertex(u) || !g.has_vertex(v)) throw std::invalid_argument("is_local_two_cut: bad vertex");
  const int d = graph::distance(g, u, v);
  if (d < 0 || d > r) return false;
  const Vertex sources[] = {u, v};
  const auto ball_vertices = graph::ball_of_set(g, sources, r);
  const auto sub = graph::induced_subgraph(g, ball_vertices);
  return is_minimal_two_cut(sub.graph, sub.from_parent[static_cast<std::size_t>(u)],
                            sub.from_parent[static_cast<std::size_t>(v)]);
}

std::vector<VertexPair> local_two_cuts(const Graph& g, int r) {
  require_radius(r);
  std::vector<VertexPair> result;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    // Candidates are the vertices within distance r of u (with larger index,
    // to emit each pair once).
    for (Vertex v : graph::ball(g, u, r)) {
      if (v <= u) continue;
      if (is_local_two_cut(g, u, v, r)) result.push_back({u, v});
    }
  }
  return result;
}

std::vector<Vertex> vertices_in_local_two_cuts(const Graph& g, int r) {
  std::vector<char> in(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const VertexPair p : local_two_cuts(g, r)) {
    in[static_cast<std::size_t>(p.u)] = 1;
    in[static_cast<std::size_t>(p.v)] = 1;
  }
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (in[static_cast<std::size_t>(v)]) result.push_back(v);
  }
  return result;
}

}  // namespace lmds::cuts
