#include "cuts/interesting.hpp"

#include <algorithm>

#include "graph/bfs.hpp"
#include "graph/ops.hpp"

namespace lmds::cuts {

namespace {

// Shared condition check on an already-materialised host graph h in which
// {u, v} is known to be a minimal 2-cut. Conditions:
//   (1) N_G[v] ⊄ N_G[u] — evaluated in h, which agrees with g because h
//       contains the full 1-balls of u and v;
//   (2) >= 2 components of h − {u, v} contain a vertex non-adjacent to u.
bool interesting_conditions(const Graph& h, Vertex v, Vertex u) {
  if (h.closed_neighborhood_contained(v, u)) return false;  // N[v] ⊆ N[u]
  const Vertex removed[] = {u, v};
  const auto comps = graph::components_without(h, removed);
  std::vector<char> has_nonneighbor(static_cast<std::size_t>(comps.count), 0);
  for (Vertex w = 0; w < h.num_vertices(); ++w) {
    const int c = comps.component[static_cast<std::size_t>(w)];
    if (c < 0) continue;
    if (!h.has_edge(w, u)) has_nonneighbor[static_cast<std::size_t>(c)] = 1;
  }
  int count = 0;
  for (int c = 0; c < comps.count; ++c) {
    if (has_nonneighbor[static_cast<std::size_t>(c)]) ++count;
  }
  return count >= 2;
}

}  // namespace

bool certifies_interesting(const Graph& g, Vertex v, Vertex u, int r) {
  if (u == v) return false;
  const int d = graph::distance(g, u, v);
  if (d < 0 || d > r) return false;
  const Vertex sources[] = {u, v};
  const auto ball_vertices = graph::ball_of_set(g, sources, r);
  const auto sub = graph::induced_subgraph(g, ball_vertices);
  const Vertex su = sub.from_parent[static_cast<std::size_t>(u)];
  const Vertex sv = sub.from_parent[static_cast<std::size_t>(v)];
  if (!is_minimal_two_cut(sub.graph, su, sv)) return false;
  // The 1-balls of u and v lie inside the r-ball of {u, v} (r >= 1), so
  // closed neighbourhoods agree between g and the ball graph.
  return interesting_conditions(sub.graph, sv, su);
}

bool is_interesting(const Graph& g, Vertex v, int r) {
  for (Vertex u : graph::ball(g, v, r)) {
    if (u == v) continue;
    if (certifies_interesting(g, v, u, r)) return true;
  }
  return false;
}

std::vector<Vertex> interesting_vertices(const Graph& g, int r) {
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (is_interesting(g, v, r)) result.push_back(v);
  }
  return result;
}

bool certifies_globally_interesting(const Graph& g, Vertex v, Vertex u) {
  if (u == v) return false;
  if (!is_minimal_two_cut(g, u, v)) return false;
  return interesting_conditions(g, v, u);
}

bool is_globally_interesting(const Graph& g, Vertex v) {
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (u == v) continue;
    if (certifies_globally_interesting(g, v, u)) return true;
  }
  return false;
}

std::vector<Vertex> globally_interesting_vertices(const Graph& g) {
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (is_globally_interesting(g, v)) result.push_back(v);
  }
  return result;
}

bool is_almost_interesting(const Graph& g, Vertex v) {
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (u == v || !is_minimal_two_cut(g, u, v)) continue;
    const Vertex removed[] = {u, v};
    const auto comps = graph::components_without(g, removed);
    std::vector<char> has_nonneighbor(static_cast<std::size_t>(comps.count), 0);
    for (Vertex w = 0; w < g.num_vertices(); ++w) {
      const int c = comps.component[static_cast<std::size_t>(w)];
      if (c < 0) continue;
      if (!g.has_edge(w, u)) has_nonneighbor[static_cast<std::size_t>(c)] = 1;
    }
    int count = 0;
    for (int c = 0; c < comps.count; ++c) {
      if (has_nonneighbor[static_cast<std::size_t>(c)]) ++count;
    }
    if (count >= 2) return true;
  }
  return false;
}

}  // namespace lmds::cuts
