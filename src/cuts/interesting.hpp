#pragma once
// "Interesting" vertices of (local) 2-cuts — Section 3.2 / Section 4.
//
// A vertex v is r-interesting when some r-local minimal 2-cut c = {u, v}
// satisfies:
//   (1) N[v] ⊄ N[u]  (taking u instead of v would not be strictly better),
//   (2) at least two connected components of G[N^r[c]] − c contain a vertex
//       non-adjacent to u (u cannot dominate all but one attached component).
//
// The paper also uses the global analogue (r = ∞) where the components are
// those of G − c; that version feeds the SPQR-based analysis of §5.3
// (friends, almost-interesting vertices, Proposition 5.8).

#include <vector>

#include "cuts/two_cuts.hpp"
#include "graph/graph.hpp"

namespace lmds::cuts {

/// Checks conditions (1) and (2) for the specific r-local pair {u, v}
/// (including that {u, v} actually is an r-local minimal 2-cut).
bool certifies_interesting(const Graph& g, Vertex v, Vertex u, int r);

/// True iff some u makes v r-interesting.
bool is_interesting(const Graph& g, Vertex v, int r);

/// Sorted list of all r-interesting vertices of g.
std::vector<Vertex> interesting_vertices(const Graph& g, int r);

/// Global variant: {u, v} is a minimal 2-cut of g, N[v] ⊄ N[u], and at least
/// two components of G − {u, v} contain a vertex non-adjacent to u. Then v is
/// "interesting" and u is a "friend" of v (§5.3 wording: v interesting with
/// friend u ⇔ the cut {v, u} is interesting for v).
bool certifies_globally_interesting(const Graph& g, Vertex v, Vertex u);

/// True iff some u makes v globally interesting.
bool is_globally_interesting(const Graph& g, Vertex v);

/// Sorted list of globally interesting vertices.
std::vector<Vertex> globally_interesting_vertices(const Graph& g);

/// "Almost interesting" (§5.3): v satisfies condition (2) only, for some
/// minimal 2-cut {u, v} of g.
bool is_almost_interesting(const Graph& g, Vertex v);

}  // namespace lmds::cuts
