#pragma once
// r-local cuts (Definition 2.1).
//
// A set C of vertices, pairwise at distance <= r, is an r-local k-cut when C
// is a (minimal) k-cut of G[∪_{v∈C} N^r[v]]. For k = 1 this means v is an
// articulation point of its own r-ball; for k = 2 it means {u, v} is a
// minimal 2-cut of the union of the two r-balls.
//
// Locality: deciding "is v in an r-local 1-cut" needs only N^{r}[v] plus the
// edges among it, i.e. a radius-(r+1) view; deciding "is {u,v} an r-local
// 2-cut" from v's perspective needs N^r[u] ∪ N^r[v] ⊆ N^{2r}[v], i.e. a
// radius-(2r+1) view. The LOCAL runner (local/runner.hpp) uses exactly these
// view radii, which is where the round counts reported by the benches come
// from.

#include <vector>

#include "cuts/two_cuts.hpp"
#include "graph/graph.hpp"

namespace lmds::cuts {

/// True iff {v} is an r-local (minimal) 1-cut: v is an articulation point of
/// G[N^r[v]].
bool is_local_one_cut(const Graph& g, Vertex v, int r);

/// Sorted list of all r-local 1-cut vertices of g.
std::vector<Vertex> local_one_cuts(const Graph& g, int r);

/// True iff {u, v} is an r-local minimal 2-cut: d_G(u, v) <= r and {u, v} is
/// a minimal 2-cut of G[N^r[u] ∪ N^r[v]].
bool is_local_two_cut(const Graph& g, Vertex u, Vertex v, int r);

/// All r-local minimal 2-cuts of g (u < v in each pair). Quadratic in ball
/// sizes — meant for analysis benches and moderate instances.
std::vector<VertexPair> local_two_cuts(const Graph& g, int r);

/// Sorted list of vertices appearing in some r-local minimal 2-cut.
std::vector<Vertex> vertices_in_local_two_cuts(const Graph& g, int r);

}  // namespace lmds::cuts
