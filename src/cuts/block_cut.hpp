#pragma once
// Articulation points, biconnected components and the block-cut tree.
//
// The block-cut tree is the "tree-like structure" behind Claim 5.3 of the
// paper (bounding 1-cuts against MDS) and the 1-cut layer of the
// interesting-2-cut forests of §5.3.

#include <vector>

#include "graph/graph.hpp"

namespace lmds::cuts {

using graph::Graph;
using graph::Vertex;

/// Sorted list of articulation points (1-cuts) of g. Linear time (iterative
/// Tarjan lowpoint DFS).
std::vector<Vertex> articulation_points(const Graph& g);

/// True iff removing v increases the number of connected components.
/// O(n + m) — brute-force reference used in tests and by the local-cut code
/// on small ball graphs.
bool is_cut_vertex(const Graph& g, Vertex v);

/// The block-cut tree of a graph.
///
/// Nodes are the maximal biconnected components ("blocks", including bridge
/// edges and isolated vertices as trivial blocks) plus the cut vertices.
/// In `tree`, node i < num_blocks() is block i and node num_blocks() + j is
/// cut vertex cut_vertices[j]; a block is adjacent to every cut vertex it
/// contains. For a connected graph the result is a tree.
struct BlockCutTree {
  std::vector<std::vector<Vertex>> blocks;  ///< vertex lists, each sorted
  std::vector<Vertex> cut_vertices;         ///< sorted articulation points
  Graph tree;                               ///< bipartite block/cut incidence tree

  int num_blocks() const { return static_cast<int>(blocks.size()); }
  int num_cut_vertices() const { return static_cast<int>(cut_vertices.size()); }

  /// Tree node index of the j-th cut vertex.
  Vertex cut_node(int j) const { return static_cast<Vertex>(num_blocks() + j); }

  /// Index into cut_vertices for graph vertex v, or -1 if v is not a cut
  /// vertex.
  int cut_index(Vertex v) const;

  /// Blocks containing graph vertex v (indices into `blocks`).
  std::vector<int> blocks_of(Vertex v) const;
};

/// Computes the block-cut tree of g.
BlockCutTree block_cut_tree(const Graph& g);

}  // namespace lmds::cuts
